"""Simulated multicore NED allocator (§5, figs. 2-3).

Executes NED with the FlowBlock/LinkBlock partitioning *exactly as the
paper's multicore implementation does*, with each "processor" as a
simulated core:

1. every processor computes Equation-3 rates for its FlowBlock using
   its private copies of the two LinkBlocks' prices, and accumulates
   load (``G``) and Hessian (``H``) partials into private LinkBlock
   copies — zero shared-state writes;
2. partials are aggregated to authoritative copies following the
   fig. 3 diagonal schedule (``log2 n`` steps, uniform bandwidth);
3. authoritative holders run the Equation-4 price update for their
   LinkBlocks;
4. updated prices are distributed back along the reverse schedule.

The result is numerically identical (up to float associativity) to
single-core NED — a property the test suite asserts — while the engine
counts the work and communication that the §6.1 cost model turns into
cycle estimates.

Execution is pluggable behind :class:`ParallelBackend`:

* ``backend="simulated"`` (default) runs every processor in this
  process, exactly as described above — fast to construct, counts the
  §6.1 work/communication stats, no real parallelism;
* ``backend="process"`` runs the same phase structure on a persistent
  pool of **worker processes** (see
  :mod:`repro.parallel.process_backend`), measuring *actual* parallel
  speedup instead of modeling it.  All coordination goes through a
  pluggable fabric (:mod:`repro.parallel.fabric`): ``fabric="shm"``
  (shared memory + a sense-reversing flag-array barrier, default) or
  ``fabric="socket"`` (TCP length-prefixed frames, multi-host capable).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from typing import Any

import numpy as np
import numpy.typing as npt

from ..core.ned import NedOptimizer
from ..core.network import FlowTable
from ..core.utility import LogUtility, Utility
from ..topology.graph import Topology
from .aggregation import (aggregation_schedule, distribution_schedule,
                          final_down_holder, final_up_holder)
from .blocks import BlockPartition
from .cost_model import cpu_of

__all__ = ["IterationStats", "MulticoreNedEngine", "ParallelBackend",
           "SimulatedBackend", "ned_price_update"]


def ned_price_update(prices_row, load_row, hessian_row, link_idx,
                     capacity, idle_price, gamma):
    """NED Equation 4 on one LinkBlock, in place.

    Factored out of the engine so the simulated and worker-process
    backends run the *same float operations in the same order* — the
    cross-backend equivalence suite leans on that.
    """
    over = load_row[link_idx] - capacity[link_idx]
    hessian = hessian_row[link_idx]
    prices = prices_row[link_idx]
    carrying = hessian < 0.0
    step = np.zeros_like(prices)
    step[carrying] = over[carrying] / hessian[carrying]
    new_prices = np.where(carrying, prices - gamma * step,
                          idle_price[link_idx])
    np.maximum(new_prices, 0.0, out=new_prices)
    prices_row[link_idx] = new_prices


class ParallelBackend:
    """Execution strategy for :class:`MulticoreNedEngine` iterations."""

    name = "base"

    def run(self, n, stats):
        """Execute ``n`` full iterations, accumulating into ``stats``."""
        raise NotImplementedError

    def close(self):
        """Release any resources (worker processes, shared memory)."""

    def refresh_capacity(self):
        """Republish capacity-derived state after
        :meth:`MulticoreNedEngine.refresh_capacity`; no-op for
        backends that read the engine's arrays directly."""


class SimulatedBackend(ParallelBackend):
    """In-process execution of the simulated processor grid."""

    name = "simulated"

    def __init__(self, engine):
        self.engine = engine

    def run(self, n, stats):
        for _ in range(n):
            self.engine._iterate_once(stats)


@dataclass
class IterationStats:
    """Work/communication counts for one engine iteration."""

    n_processors: int = 0
    aggregation_steps: int = 0
    #: LinkBlock transfers per phase (aggregate + distribute).
    messages: int = 0
    #: transfers crossing CPU sockets under the paper's core->CPU
    #: mapping — the §5 multi-machine story: these are the transfers
    #: that would ride the network in a multi-server allocator.
    inter_cpu_messages: int = 0
    #: total link-entries moved (messages x links per block).
    link_entries_moved: int = 0
    #: largest per-processor flow count (critical-path rate work).
    max_flows_per_processor: int = 0
    total_flows: int = 0
    links_per_block: int = 0


class _Processor:
    """One core's state: a FlowBlock plus private LinkBlock copies.

    For the simulated backend the table and price vector are ordinary
    process-local arrays; the process backend passes in a shared-memory
    FlowTable and a row view of the shared price matrix so the parent
    and the owning worker see the same bytes.
    """

    def __init__(self, coords, links, max_route_len, table=None,
                 prices=None):
        self.coords = coords
        self.table = (table if table is not None
                      else FlowTable(links, max_route_len=max_route_len))
        # Private, full-length price vector; only entries of this
        # processor's two LinkBlocks are ever read.
        self.prices = (prices if prices is not None
                       else np.ones(links.n_links, dtype=np.float64))
        self.partial_load = None
        self.partial_hessian = None
        # Per-flow price floor U'(bottleneck), cached between churn
        # events (same role as PriceOptimizer's cap cache).
        self.price_floor = None
        self.floor_version = -1


class MulticoreNedEngine:
    """NED across an ``n_blocks x n_blocks`` simulated processor grid.

    The engine deliberately mirrors :class:`~repro.core.ned.NedOptimizer`
    — same utility, same gamma, same idle-price rule — so that
    equivalence can be checked flow-for-flow.
    """

    def __init__(self, topology: Topology, n_blocks: int,
                 utility: Utility | None = None, gamma: float = 1.0,
                 max_route_len: int = 8, backend: str = "simulated",
                 n_workers: int | None = None, reserve_per_block: int = 0,
                 fabric: str = "shm",
                 fabric_options: dict | None = None) -> None:
        self.partition = BlockPartition(topology, n_blocks)
        self.links = topology.link_set()
        self.utility = utility if utility is not None else LogUtility()
        self.gamma = float(gamma)
        self.max_route_len = max_route_len
        n = self.partition.n_blocks
        self.grid_side = n
        self._agg_steps = aggregation_schedule(n)
        self._dist_steps = distribution_schedule(n)
        # Reference single-core optimizer state (prices) kept for the
        # idle-price constant only; cheap.
        self._idle_price = np.asarray(
            self.utility.inverse_rate(self.links.capacity, 1.0),
            dtype=np.float64)
        self._flow_home = {}
        if backend == "simulated":
            if n_workers is not None:
                raise ValueError("n_workers applies to backend='process'")
            self.processors = {
                cell: _Processor(cell, self.links, max_route_len)
                for cell in self.partition.grid_cells()
            }
            if reserve_per_block:
                for proc in self.processors.values():
                    proc.table.reserve(int(reserve_per_block))
            self.backend = SimulatedBackend(self)
        elif backend == "process":
            from .process_backend import ProcessBackend
            # The backend allocates the coordination state through the
            # chosen fabric and populates ``self.processors`` with
            # fabric-backed tables/price rows.
            self.backend = ProcessBackend(
                self, n_workers=n_workers,
                reserve_per_block=reserve_per_block,
                fabric=fabric, fabric_options=fabric_options)
        else:
            raise ValueError(f"unknown backend {backend!r}; "
                             "choose 'simulated' or 'process'")

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def add_flow(self, flow_id: Hashable, src_host: int, dst_host: int,
                 route: npt.ArrayLike | None = None,
                 weight: float = 1.0) -> tuple[int, int]:
        if route is None:
            route = self.partition.topology.route(src_host, dst_host, flow_id)
        coords = self.partition.flowblock_of(src_host, dst_host)
        self.processors[coords].table.add_flow(flow_id, route, weight=weight)
        self._flow_home[flow_id] = coords
        return coords

    def remove_flow(self, flow_id: Hashable) -> None:
        coords = self._flow_home.pop(flow_id)
        self.processors[coords].table.remove_flow(flow_id)

    def apply_churn(self, starts: Iterable[tuple[Any, ...]] = (),
                    ends: Iterable[Hashable] = ()) -> None:
        """Batched flowlet churn routed to the owning FlowBlocks.

        ``ends`` is an iterable of flow ids; ``starts`` of ``(flow_id,
        src_host, dst_host)`` or ``(flow_id, src_host, dst_host,
        weight)`` tuples (routes are computed here, like
        :meth:`add_flow`).  The whole batch is validated before
        anything mutates — a bad id or weight raises with the engine
        unchanged.  Removals are applied first — batched per block
        through :meth:`FlowTable.remove_flows` — then the adds go
        through each block's vectorized ``apply_churn``, so an id
        appearing in both is restarted.  Under the process backend the
        block tables are shared memory, so a churn batch reaches the
        workers without rebuilding any buffer; only a block outgrowing
        its capacity triggers a (rare) re-attach message.
        """
        ends = list(ends)
        ending = set()
        for flow_id in ends:
            if flow_id not in self._flow_home or flow_id in ending:
                raise KeyError(f"flow {flow_id!r} is not active")
            ending.add(flow_id)
        starts_by_cell = {}
        new_ids = set()
        for start in starts:
            flow_id, src_host, dst_host = start[:3]
            weight = float(start[3]) if len(start) > 3 else 1.0
            if flow_id in new_ids or (flow_id in self._flow_home
                                      and flow_id not in ending):
                raise KeyError(f"flow {flow_id!r} is already active")
            if not weight > 0:
                raise ValueError("flow weight must be positive")
            route = self.partition.topology.route(src_host, dst_host,
                                                  flow_id)
            if len(route) > self.max_route_len:
                raise ValueError(
                    f"route has {len(route)} hops; engine supports "
                    f"{self.max_route_len}")
            new_ids.add(flow_id)
            cell = self.partition.flowblock_of(src_host, dst_host)
            starts_by_cell.setdefault(cell, []).append(
                (flow_id, route, weight))
        # Batch validated; now mutate.
        ends_by_cell = {}
        for flow_id in ends:
            cell = self._flow_home.pop(flow_id)
            ends_by_cell.setdefault(cell, []).append(flow_id)
        for cell, cell_ends in ends_by_cell.items():
            self.processors[cell].table.remove_flows(cell_ends)
        for cell, cell_starts in starts_by_cell.items():
            self.processors[cell].table.apply_churn(starts=cell_starts)
            for flow_id, _, _ in cell_starts:
                self._flow_home[flow_id] = cell

    def refresh_capacity(self) -> None:
        """Re-read link capacities after an in-place change (§7).

        This is the supported way to change capacities under the
        engine: it re-derives the idle-price constants, invalidates
        every FlowBlock's capacity-derived caches, and (through the
        backend) republishes capacity-derived state to worker
        processes — mutating ``links.capacity`` without calling this
        leaves the backends free to diverge.
        """
        self._idle_price[:] = self.utility.inverse_rate(
            self.links.capacity, 1.0)
        for proc in self.processors.values():
            proc.table.refresh_capacity()
        self.backend.refresh_capacity()

    @property
    def n_flows(self) -> int:
        return len(self._flow_home)

    # ------------------------------------------------------------------
    # one parallel iteration
    # ------------------------------------------------------------------
    def iterate(self, n: int = 1) -> IterationStats:
        stats = IterationStats(
            n_processors=self.partition.n_processors,
            links_per_block=self.partition.links_per_block)
        self.backend.run(n, stats)
        return stats

    def close(self) -> None:
        """Shut down the backend (worker pool, shared memory, sockets);
        no-op for the simulated backend.  Idempotent, and safe to call
        even if backend construction failed partway or a worker died
        mid-run — the fabric tears down every segment and socket it
        allocated.  The engine is unusable afterwards if the backend
        held real resources."""
        backend = getattr(self, "backend", None)
        if backend is not None:
            backend.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _iterate_once(self, stats):
        # Phase 1: local rate computation and partial accumulation.
        max_flows = 0
        for proc in self.processors.values():
            table = proc.table
            max_flows = max(max_flows, table.n_flows)
            if table.n_flows:
                rho = table.price_sums(proc.prices)
                rho = np.maximum(rho, self._price_floor(proc))
                rates = self.utility.rate(rho, table.weights)
                derivative = self.utility.rate_derivative(rho, table.weights)
                proc.partial_load, proc.partial_hessian = \
                    table.link_totals2(rates, derivative)
            else:
                proc.partial_load = np.zeros(self.links.n_links)
                proc.partial_hessian = np.zeros(self.links.n_links)
        stats.max_flows_per_processor = max(stats.max_flows_per_processor,
                                            max_flows)
        stats.total_flows = self.n_flows

        # Phase 2: aggregate partials along the fig. 3 schedule.  Each
        # transfer moves only the entries of one LinkBlock.
        for step in self._agg_steps:
            staged = []
            for t in step:
                idx = self.partition.link_block(t.block, t.upward)
                src = self.processors[t.src]
                staged.append((t, idx, src.partial_load[idx].copy(),
                               src.partial_hessian[idx].copy()))
            # Apply after staging: transfers within a step are concurrent.
            for t, idx, load_part, hessian_part in staged:
                dst = self.processors[t.dst]
                dst.partial_load[idx] += load_part
                dst.partial_hessian[idx] += hessian_part
                stats.messages += 1
                stats.link_entries_moved += len(idx)
                if cpu_of(t.src, self.grid_side) != \
                        cpu_of(t.dst, self.grid_side):
                    stats.inter_cpu_messages += 1
        stats.aggregation_steps += len(self._agg_steps)

        # Phase 3: authoritative price update on the grid diagonals.
        n = self.grid_side
        for block in range(n):
            up_holder = self.processors[final_up_holder(n, block)]
            self._price_update(up_holder, self.partition.upward_links[block])
            down_holder = self.processors[final_down_holder(n, block)]
            self._price_update(down_holder,
                               self.partition.downward_links[block])

        # Phase 4: distribute updated prices along the reverse schedule.
        for step in self._dist_steps:
            staged = []
            for t in step:
                idx = self.partition.link_block(t.block, t.upward)
                staged.append((t, idx, self.processors[t.src].prices[idx].copy()))
            for t, idx, prices_part in staged:
                self.processors[t.dst].prices[idx] = prices_part
                stats.messages += 1
                stats.link_entries_moved += len(idx)
                if cpu_of(t.src, self.grid_side) != \
                        cpu_of(t.dst, self.grid_side):
                    stats.inter_cpu_messages += 1

    def _price_floor(self, proc):
        """Cached per-flow cap prices for one processor's FlowBlock."""
        table = proc.table
        if proc.floor_version != table.version:
            proc.price_floor = self.utility.inverse_rate(
                table.bottleneck_capacity(), table.weights)
            proc.floor_version = table.version
        return proc.price_floor

    def _price_update(self, proc, link_idx):
        """NED Equation 4 on one LinkBlock of the authoritative holder."""
        ned_price_update(proc.prices, proc.partial_load,
                         proc.partial_hessian, link_idx,
                         self.links.capacity, self._idle_price, self.gamma)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def rates(self) -> dict[Any, float]:
        """flow_id -> current rate, combining all processors."""
        out = {}
        for proc in self.processors.values():
            table = proc.table
            if not table.n_flows:
                continue
            rho = table.price_sums(proc.prices)
            rho = np.maximum(rho, self._price_floor(proc))
            rates = self.utility.rate(rho, table.weights)
            out.update(zip(table.flow_ids(), (float(r) for r in rates)))
        return out

    def global_prices(self) -> npt.NDArray[np.float64]:
        """Authoritative prices assembled from the diagonal holders."""
        prices = np.zeros(self.links.n_links)
        n = self.grid_side
        for block in range(n):
            up_idx = self.partition.upward_links[block]
            prices[up_idx] = self.processors[
                final_up_holder(n, block)].prices[up_idx]
            down_idx = self.partition.downward_links[block]
            prices[down_idx] = self.processors[
                final_down_holder(n, block)].prices[down_idx]
        return prices

    def reference_optimizer(self) -> NedOptimizer:
        """A single-core NED over the same flows (equivalence checks)."""
        table = FlowTable(self.links, max_route_len=self.max_route_len)
        for proc in self.processors.values():
            for flow_id in proc.table.flow_ids():
                table.add_flow(flow_id, proc.table.route_of(flow_id),
                               weight=float(proc.table.weights[
                                   proc.table.index_of(flow_id)]))
        return NedOptimizer(table, utility=self.utility, gamma=self.gamma)
