"""Simulated multicore NED allocator (§5, figs. 2-3).

Executes NED with the FlowBlock/LinkBlock partitioning *exactly as the
paper's multicore implementation does*, with each "processor" as a
simulated core:

1. every processor computes Equation-3 rates for its FlowBlock using
   its private copies of the two LinkBlocks' prices, and accumulates
   load (``G``) and Hessian (``H``) partials into private LinkBlock
   copies — zero shared-state writes;
2. partials are aggregated to authoritative copies following the
   fig. 3 diagonal schedule (``log2 n`` steps, uniform bandwidth);
3. authoritative holders run the Equation-4 price update for their
   LinkBlocks;
4. updated prices are distributed back along the reverse schedule.

The result is numerically identical (up to float associativity) to
single-core NED — a property the test suite asserts — while the engine
counts the work and communication that the §6.1 cost model turns into
cycle estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ned import NedOptimizer
from ..core.network import FlowTable
from ..core.utility import LogUtility
from .aggregation import (aggregation_schedule, distribution_schedule,
                          final_down_holder, final_up_holder)
from .blocks import BlockPartition
from .cost_model import cpu_of

__all__ = ["IterationStats", "MulticoreNedEngine"]


@dataclass
class IterationStats:
    """Work/communication counts for one engine iteration."""

    n_processors: int = 0
    aggregation_steps: int = 0
    #: LinkBlock transfers per phase (aggregate + distribute).
    messages: int = 0
    #: transfers crossing CPU sockets under the paper's core->CPU
    #: mapping — the §5 multi-machine story: these are the transfers
    #: that would ride the network in a multi-server allocator.
    inter_cpu_messages: int = 0
    #: total link-entries moved (messages x links per block).
    link_entries_moved: int = 0
    #: largest per-processor flow count (critical-path rate work).
    max_flows_per_processor: int = 0
    total_flows: int = 0
    links_per_block: int = 0


class _Processor:
    """One simulated core: a FlowBlock plus private LinkBlock copies."""

    def __init__(self, coords, links, max_route_len):
        self.coords = coords
        self.table = FlowTable(links, max_route_len=max_route_len)
        # Private, full-length price vector; only entries of this
        # processor's two LinkBlocks are ever read.
        self.prices = np.ones(links.n_links, dtype=np.float64)
        self.partial_load = None
        self.partial_hessian = None
        # Per-flow price floor U'(bottleneck), cached between churn
        # events (same role as PriceOptimizer's cap cache).
        self.price_floor = None
        self.floor_version = -1


class MulticoreNedEngine:
    """NED across an ``n_blocks x n_blocks`` simulated processor grid.

    The engine deliberately mirrors :class:`~repro.core.ned.NedOptimizer`
    — same utility, same gamma, same idle-price rule — so that
    equivalence can be checked flow-for-flow.
    """

    def __init__(self, topology, n_blocks, utility=None, gamma=1.0,
                 max_route_len=8):
        self.partition = BlockPartition(topology, n_blocks)
        self.links = topology.link_set()
        self.utility = utility if utility is not None else LogUtility()
        self.gamma = float(gamma)
        self.max_route_len = max_route_len
        n = self.partition.n_blocks
        self.grid_side = n
        self.processors = {
            (r, c): _Processor((r, c), self.links, max_route_len)
            for r in range(n) for c in range(n)
        }
        self._agg_steps = aggregation_schedule(n)
        self._dist_steps = distribution_schedule(n)
        # Reference single-core optimizer state (prices) kept for the
        # idle-price constant only; cheap.
        self._idle_price = np.asarray(
            self.utility.inverse_rate(self.links.capacity, 1.0),
            dtype=np.float64)
        self._flow_home = {}

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def add_flow(self, flow_id, src_host, dst_host, route=None, weight=1.0):
        if route is None:
            route = self.partition.topology.route(src_host, dst_host, flow_id)
        coords = self.partition.flowblock_of(src_host, dst_host)
        self.processors[coords].table.add_flow(flow_id, route, weight=weight)
        self._flow_home[flow_id] = coords
        return coords

    def remove_flow(self, flow_id):
        coords = self._flow_home.pop(flow_id)
        self.processors[coords].table.remove_flow(flow_id)

    @property
    def n_flows(self):
        return len(self._flow_home)

    # ------------------------------------------------------------------
    # one parallel iteration
    # ------------------------------------------------------------------
    def iterate(self, n: int = 1):
        stats = IterationStats(
            n_processors=self.partition.n_processors,
            links_per_block=self.partition.links_per_block)
        for _ in range(n):
            self._iterate_once(stats)
        return stats

    def _iterate_once(self, stats):
        # Phase 1: local rate computation and partial accumulation.
        max_flows = 0
        for proc in self.processors.values():
            table = proc.table
            max_flows = max(max_flows, table.n_flows)
            if table.n_flows:
                rho = table.price_sums(proc.prices)
                rho = np.maximum(rho, self._price_floor(proc))
                rates = self.utility.rate(rho, table.weights)
                derivative = self.utility.rate_derivative(rho, table.weights)
                proc.partial_load = table.link_totals(rates)
                proc.partial_hessian = table.link_totals(derivative)
            else:
                proc.partial_load = np.zeros(self.links.n_links)
                proc.partial_hessian = np.zeros(self.links.n_links)
        stats.max_flows_per_processor = max(stats.max_flows_per_processor,
                                            max_flows)
        stats.total_flows = self.n_flows

        # Phase 2: aggregate partials along the fig. 3 schedule.  Each
        # transfer moves only the entries of one LinkBlock.
        for step in self._agg_steps:
            staged = []
            for t in step:
                idx = (self.partition.upward_links[t.block] if t.upward
                       else self.partition.downward_links[t.block])
                src = self.processors[t.src]
                staged.append((t, idx, src.partial_load[idx].copy(),
                               src.partial_hessian[idx].copy()))
            # Apply after staging: transfers within a step are concurrent.
            for t, idx, load_part, hessian_part in staged:
                dst = self.processors[t.dst]
                dst.partial_load[idx] += load_part
                dst.partial_hessian[idx] += hessian_part
                stats.messages += 1
                stats.link_entries_moved += len(idx)
                if cpu_of(t.src, self.grid_side) != \
                        cpu_of(t.dst, self.grid_side):
                    stats.inter_cpu_messages += 1
        stats.aggregation_steps += len(self._agg_steps)

        # Phase 3: authoritative price update on the grid diagonals.
        n = self.grid_side
        for block in range(n):
            up_holder = self.processors[final_up_holder(n, block)]
            self._price_update(up_holder, self.partition.upward_links[block])
            down_holder = self.processors[final_down_holder(n, block)]
            self._price_update(down_holder,
                               self.partition.downward_links[block])

        # Phase 4: distribute updated prices along the reverse schedule.
        for step in self._dist_steps:
            staged = []
            for t in step:
                idx = (self.partition.upward_links[t.block] if t.upward
                       else self.partition.downward_links[t.block])
                staged.append((t, idx, self.processors[t.src].prices[idx].copy()))
            for t, idx, prices_part in staged:
                self.processors[t.dst].prices[idx] = prices_part
                stats.messages += 1
                stats.link_entries_moved += len(idx)
                if cpu_of(t.src, self.grid_side) != \
                        cpu_of(t.dst, self.grid_side):
                    stats.inter_cpu_messages += 1

    def _price_floor(self, proc):
        """Cached per-flow cap prices for one processor's FlowBlock."""
        table = proc.table
        if proc.floor_version != table.version:
            proc.price_floor = self.utility.inverse_rate(
                table.bottleneck_capacity(), table.weights)
            proc.floor_version = table.version
        return proc.price_floor

    def _price_update(self, proc, link_idx):
        """NED Equation 4 on one LinkBlock of the authoritative holder."""
        over = proc.partial_load[link_idx] - self.links.capacity[link_idx]
        hessian = proc.partial_hessian[link_idx]
        prices = proc.prices[link_idx]
        carrying = hessian < 0.0
        step = np.zeros_like(prices)
        step[carrying] = over[carrying] / hessian[carrying]
        new_prices = np.where(carrying, prices - self.gamma * step,
                              self._idle_price[link_idx])
        np.maximum(new_prices, 0.0, out=new_prices)
        proc.prices[link_idx] = new_prices

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def rates(self):
        """flow_id -> current rate, combining all processors."""
        out = {}
        for proc in self.processors.values():
            table = proc.table
            if not table.n_flows:
                continue
            rho = table.price_sums(proc.prices)
            rho = np.maximum(rho, self._price_floor(proc))
            rates = self.utility.rate(rho, table.weights)
            out.update(zip(table.flow_ids(), (float(r) for r in rates)))
        return out

    def global_prices(self):
        """Authoritative prices assembled from the diagonal holders."""
        prices = np.zeros(self.links.n_links)
        n = self.grid_side
        for block in range(n):
            up_idx = self.partition.upward_links[block]
            prices[up_idx] = self.processors[
                final_up_holder(n, block)].prices[up_idx]
            down_idx = self.partition.downward_links[block]
            prices[down_idx] = self.processors[
                final_down_holder(n, block)].prices[down_idx]
        return prices

    def reference_optimizer(self):
        """A single-core NED over the same flows (equivalence checks)."""
        table = FlowTable(self.links, max_route_len=self.max_route_len)
        for proc in self.processors.values():
            for flow_id in proc.table.flow_ids():
                table.add_flow(flow_id, proc.table.route_of(flow_id),
                               weight=float(proc.table.weights[
                                   proc.table.index_of(flow_id)]))
        return NedOptimizer(table, utility=self.utility, gamma=self.gamma)
