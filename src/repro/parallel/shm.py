"""Shared-memory numpy arrays: the shm fabric's storage layer.

The :class:`~repro.parallel.fabric.SharedMemoryFabric` keeps all hot
state — per-FlowBlock flow columns (routes, weights, bottleneck
capacities), the per-processor price/load/Hessian vectors, and the
sense-reversing barrier's flag array — in
``multiprocessing.shared_memory`` segments, so worker processes
operate on the *same* physical pages the parent's
:class:`~repro.core.network.FlowTable` writes during churn.  No
per-iteration serialization crosses the process boundary; only tiny
control messages do.  (The socket fabric shares nothing and does not
use this module — fabrics own their storage strategy.)

:class:`SharedArena` owns the segments on the parent side and hands
out named numpy views.  Re-allocating an existing tag (what
``FlowTable._grow`` does when a churn batch overflows capacity)
supersedes the old segment; the old one is unlinked immediately — the
fork-inherited mappings in workers stay valid until they re-attach via
:func:`attach` using the manifest the fabric ships over the control
pipe.
"""

from __future__ import annotations

import numpy as np

from multiprocessing import shared_memory

__all__ = ["SharedArena", "attach"]


class SharedArena:
    """Allocator of tagged numpy arrays backed by shared memory.

    Tags are hierarchical strings (``"cell3/routes"``); the arena
    remembers the live segment per tag so :meth:`manifest` can describe
    a subtree for worker-side :func:`attach`, and :meth:`close` can
    release everything.
    """

    def __init__(self):
        self._live = {}       # tag -> (SharedMemory, shape, dtype)
        self._graveyard = []  # superseded segments, closed at close()

    def allocate(self, tag, shape, dtype):
        """Return an uninitialized shm-backed array registered as ``tag``.

        Allocating an existing tag supersedes (and unlinks) the prior
        segment — existing mappings of it remain valid until unmapped.
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        previous = self._live.pop(tag, None)
        if previous is not None:
            old_segment = previous[0]
            try:
                old_segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._graveyard.append(old_segment)
        self._live[tag] = (segment, shape, dtype)
        return np.ndarray(shape, dtype=dtype, buffer=segment.buf)

    def zeros(self, tag, shape, dtype=np.float64):
        array = self.allocate(tag, shape, dtype)
        array[:] = 0
        return array

    def full(self, tag, shape, fill, dtype=np.float64):
        array = self.allocate(tag, shape, dtype)
        array[:] = fill
        return array

    def allocator(self, prefix):
        """A ``FlowTable``-compatible allocator scoped under ``prefix``."""
        def alloc(tag, shape, dtype):
            return self.allocate(f"{prefix}/{tag}", shape, dtype)
        return alloc

    def shape(self, tag):
        """Shape of the live array registered as ``tag`` (None if absent)."""
        entry = self._live.get(tag)
        return entry[1] if entry is not None else None

    def manifest(self, prefix):
        """Describe the live arrays under ``prefix`` for :func:`attach`.

        Returns ``{suffix: (shm_name, shape, dtype_str)}`` — plain
        picklable data small enough for a control-pipe message.
        """
        scope = prefix + "/"
        return {tag[len(scope):]: (segment.name, shape, dtype.str)
                for tag, (segment, shape, dtype) in self._live.items()
                if tag.startswith(scope)}

    def close(self):
        """Unlink every live segment and drop all references.

        Views handed out earlier keep the parent's mappings alive until
        they are garbage collected (``SharedMemory.close`` refuses to
        unmap under exported buffers); unlinking is what matters — it
        removes the names so the memory is freed once the last process
        unmaps.
        """
        for segment, _, _ in self._live.values():
            self._release(segment)
        self._live.clear()
        for segment in self._graveyard:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
        self._graveyard.clear()

    @staticmethod
    def _release(segment):
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            segment.close()
        except BufferError:
            # A numpy view still references the mapping; the segment is
            # unlinked, so the memory goes away when the view does.
            pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass


def attach(manifest):
    """Map the arrays a :meth:`SharedArena.manifest` describes.

    Returns ``(arrays, keepalive)``: ``arrays`` maps suffix -> numpy
    view; ``keepalive`` holds the ``SharedMemory`` objects and must
    outlive the views (workers stash it next to them).
    """
    arrays, keepalive = {}, []
    for suffix, (name, shape, dtype_str) in manifest.items():
        segment = shared_memory.SharedMemory(name=name)
        keepalive.append(segment)
        arrays[suffix] = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str),
                                    buffer=segment.buf)
    return arrays, keepalive
