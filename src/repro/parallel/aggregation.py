"""The fig. 3 LinkBlock aggregation schedule.

Processors form an ``n x n`` grid (``n`` a power of two); processor
``(r, c)`` owns FlowBlock ``(r, c)`` and holds *partial* sums for
upward LinkBlock ``r`` and downward LinkBlock ``c``.  Aggregation runs
``log2(n)`` steps; at the end of step ``m``, every ``2^m x 2^m``
processor group has its upward LinkBlocks fully aggregated (over the
group's columns) on the group's main diagonal, and its downward
LinkBlocks (over the group's rows) on the secondary diagonal.

Each step therefore moves exactly one LinkBlock per row (upward) and
one per column (downward) between the two halves of each group —
uniform bandwidth, ``2n`` messages per step, ``log2(n)`` steps for
``n^2`` processors (the paper's "the number of steps increases every
quadrupling of processors, not doubling").

This module only *generates* the schedule — (source, target,
block-index) transfer triples per step — so the engine can execute it
and tests can verify its algebraic properties independently.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Transfer", "aggregation_schedule", "distribution_schedule",
           "final_up_holder", "final_down_holder"]


@dataclass(frozen=True)
class Transfer:
    """One LinkBlock hand-off: ``src`` processor sends its partial of
    ``block`` (an upward block if ``upward`` else downward) to ``dst``,
    which merges (aggregation) or overwrites (distribution)."""

    src: tuple
    dst: tuple
    block: int
    upward: bool


def _up_holder(row, group_origin_col, group_size):
    """Column of the processor holding row ``row``'s upward partial
    after aggregation over a group of ``group_size`` columns starting
    at ``group_origin_col`` (main-diagonal position)."""
    return group_origin_col + (row % group_size)


def _down_holder(col, group_origin_row, group_size):
    """Row of the processor holding column ``col``'s downward partial
    (secondary-diagonal position)."""
    return group_origin_row + (group_size - 1 - (col % group_size))


def aggregation_schedule(n: int):
    """Yield per-step transfer lists for an ``n x n`` grid.

    Returns a list of steps; each step is a list of :class:`Transfer`.
    """
    if n & (n - 1) or n < 1:
        raise ValueError("grid side must be a power of two")
    steps = []
    size = 2
    while size <= n:
        half = size // 2
        transfers = []
        for group_row in range(0, n, size):
            for group_col in range(0, n, size):
                # Upward blocks: one transfer per row of the group.
                for k in range(size):
                    row = group_row + k
                    left = (row, _up_holder(row, group_col, half))
                    right = (row, _up_holder(row, group_col + half, half))
                    target_col = group_col + k
                    target = (row, target_col)
                    source = right if target == left else left
                    assert target in (left, right), "schedule invariant"
                    transfers.append(Transfer(source, target, row, True))
                # Downward blocks: one transfer per column of the group.
                for k in range(size):
                    col = group_col + k
                    top = (_down_holder(col, group_row, half), col)
                    bottom = (_down_holder(col, group_row + half, half), col)
                    target = (group_row + (size - 1 - k), col)
                    source = bottom if target == top else top
                    assert target in (top, bottom), "schedule invariant"
                    transfers.append(Transfer(source, target, col, False))
        steps.append(transfers)
        size *= 2
    return steps


def distribution_schedule(n: int):
    """The reverse pattern: authoritative holders push updated state
    back out, step by step, until every processor has fresh copies."""
    steps = []
    for step in reversed(aggregation_schedule(n)):
        steps.append([Transfer(t.dst, t.src, t.block, t.upward)
                      for t in step])
    return steps


def final_up_holder(n: int, block: int):
    """Grid position holding upward block ``block`` after aggregation."""
    return (block, _up_holder(block, 0, n))


def final_down_holder(n: int, block: int):
    """Grid position holding downward block ``block`` after aggregation."""
    return (_down_holder(block, 0, n), block)
