"""Flowtune-vs-Fastpass allocator throughput comparison (§6.1).

The paper: "Fastpass reported 2.2 Tbits/s on 8 cores.  Fastpass
performs per-packet work, so its scalability declines with increases
in link speed.  Flowtune schedules flowlets, so allocated rates scale
proportionally with the network links...  10.4x more throughput per
core on 8x more cores — an 83x throughput increase over Fastpass."

Both allocators run in the same Python substrate here, so the
*relative* per-core throughput is an apples-to-apples measurement of
the structural difference: per-packet matching work vs per-iteration
flowlet work.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.ned import NedOptimizer
from ..core.network import FlowTable
from ..topology.clos import TwoTierClos
from .arbiter import TIMESLOT_BYTES, FastpassArbiter

__all__ = ["measure_fastpass_throughput", "measure_flowtune_throughput",
           "throughput_comparison"]


def measure_fastpass_throughput(n_hosts=256, n_pairs=2048,
                                link_gbps=40.0, min_seconds=0.3, seed=0):
    """Network throughput (Tbit/s) one arbiter core can schedule.

    The arbiter must allocate a timeslot every ``MTU / link_rate``
    seconds of network time; measuring wall-clock per timeslot gives
    the network throughput one core sustains.
    """
    rng = np.random.default_rng(seed)
    arbiter = FastpassArbiter(n_hosts)
    for _ in range(n_pairs):
        src, dst = rng.integers(n_hosts), rng.integers(n_hosts - 1)
        if dst >= src:
            dst += 1
        arbiter.add_demand(int(src), int(dst), int(rng.integers(10, 1000)))
    slots = 0
    start = time.perf_counter()
    while True:
        arbiter.allocate_timeslot()
        slots += 1
        if slots % 256 == 0 and time.perf_counter() - start > min_seconds:
            break
    elapsed = time.perf_counter() - start
    slots_per_second = slots / elapsed
    # Each slot schedules every host for one MTU-time at link rate:
    # network time covered per slot is MTU / rate; the network
    # throughput kept fed is hosts * rate * (slot_time_network /
    # slot_time_wall) — equivalently:
    slot_network_seconds = TIMESLOT_BYTES * 8.0 / (link_gbps * 1e9)
    real_time_fraction = slots_per_second * slot_network_seconds
    network_gbps = n_hosts * link_gbps
    return network_gbps * real_time_fraction / 1e3  # Tbit/s


def measure_flowtune_throughput(n_hosts=256, flows_per_host=12,
                                link_gbps=40.0, iteration_period=10e-6,
                                min_seconds=0.3, seed=0,
                                hosts_per_rack=32, n_spines=4):
    """Network throughput (Tbit/s) one NED core can allocate.

    One NED iteration re-prices the whole fabric; the allocator must
    complete an iteration every ``iteration_period`` (10 µs in §6.2).
    Wall-clock per iteration bounds the network size one core feeds.
    """
    rng = np.random.default_rng(seed)
    n_racks = max(2, n_hosts // hosts_per_rack)
    topology = TwoTierClos(n_racks=n_racks, hosts_per_rack=hosts_per_rack,
                           n_spines=n_spines, host_capacity=link_gbps)
    table = FlowTable(topology.link_set())
    n_flows = flows_per_host * topology.n_hosts
    for i in range(n_flows):
        src, dst = rng.integers(topology.n_hosts), \
            rng.integers(topology.n_hosts - 1)
        if dst >= src:
            dst += 1
        table.add_flow(i, topology.route(int(src), int(dst), i))
    optimizer = NedOptimizer(table)
    optimizer.iterate(5)  # warm caches
    iterations = 0
    start = time.perf_counter()
    while True:
        optimizer.iterate(1)
        iterations += 1
        if iterations % 8 == 0 and time.perf_counter() - start > min_seconds:
            break
    elapsed = time.perf_counter() - start
    seconds_per_iteration = elapsed / iterations
    # The core keeps up with a network iteration_period/seconds_per_iter
    # times "too fast"; throughput it can feed scales accordingly.
    real_time_fraction = iteration_period / seconds_per_iteration
    network_gbps = topology.n_hosts * link_gbps
    return network_gbps * real_time_fraction / 1e3  # Tbit/s


def throughput_comparison(**kwargs):
    """Per-core allocator throughputs and their ratio (the 10.4x/core)."""
    fastpass = measure_fastpass_throughput(**{
        k: v for k, v in kwargs.items()
        if k in ("n_hosts", "n_pairs", "link_gbps", "min_seconds", "seed")})
    flowtune = measure_flowtune_throughput(**{
        k: v for k, v in kwargs.items()
        if k in ("n_hosts", "flows_per_host", "link_gbps",
                 "iteration_period", "min_seconds", "seed")})
    return {
        "fastpass_tbps_per_core": fastpass,
        "flowtune_tbps_per_core": flowtune,
        "per_core_ratio": flowtune / max(fastpass, 1e-12),
    }
