"""Fastpass-style timeslot arbiter: the §6.1 throughput baseline."""

from .arbiter import TIMESLOT_BYTES, FastpassArbiter
from .comparison import (measure_fastpass_throughput,
                         measure_flowtune_throughput,
                         throughput_comparison)

__all__ = ["FastpassArbiter", "TIMESLOT_BYTES",
           "measure_fastpass_throughput", "measure_flowtune_throughput",
           "throughput_comparison"]
