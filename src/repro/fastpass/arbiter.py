"""A Fastpass-style centralized arbiter (Perry et al., SIGCOMM 2014).

Fastpass is the throughput-comparison baseline of §6.1: it allocates
*individual packet timeslots* by computing a maximal matching between
sources and destinations every MTU-time (1.2 µs at 10 Gbit/s), so its
arbiter work scales with *packets*, while Flowtune's scales with
flowlet churn and allocator iterations.  That structural difference —
not constant factors — is what produces the paper's 10.4x/core gap,
and it is what this implementation reproduces.

The matching is the greedy maximal matching Fastpass's "pipelined"
timeslot allocation effectively computes: scan backlogged (src, dst)
demands in arrival order, admit a pair iff both endpoints are still
free in the slot.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["FastpassArbiter", "TIMESLOT_BYTES"]

#: One timeslot carries one MTU.
TIMESLOT_BYTES = 1500


class FastpassArbiter:
    """Greedy maximal-matching timeslot allocator.

    Demands are FIFO per (src, dst) pair, matching Fastpass's
    list-processing arbiter.  ``allocate_timeslot`` returns the set of
    (src, dst) pairs that may send one MTU in this slot.
    """

    def __init__(self, n_hosts):
        self.n_hosts = int(n_hosts)
        # (src, dst) -> backlog in packets; OrderedDict preserves
        # arrival order for the greedy scan.
        self._demands = OrderedDict()
        self.timeslots_run = 0
        self.packets_allocated = 0
        #: operations performed (pair scans) — the cost-model counter.
        self.operations = 0

    def add_demand(self, src, dst, n_packets=1):
        if not 0 <= src < self.n_hosts or not 0 <= dst < self.n_hosts:
            raise ValueError("endpoint out of range")
        if src == dst:
            raise ValueError("src == dst")
        if n_packets <= 0:
            raise ValueError("demand must be positive")
        key = (src, dst)
        self._demands[key] = self._demands.get(key, 0) + int(n_packets)

    @property
    def backlog(self):
        return sum(self._demands.values())

    @property
    def n_pairs(self):
        return len(self._demands)

    def allocate_timeslot(self):
        """One timeslot: greedy maximal matching over backlogged pairs."""
        src_busy = set()
        dst_busy = set()
        matched = []
        exhausted = []
        for (src, dst), backlog in self._demands.items():
            self.operations += 1
            if src in src_busy or dst in dst_busy:
                continue
            src_busy.add(src)
            dst_busy.add(dst)
            matched.append((src, dst))
            if backlog == 1:
                exhausted.append((src, dst))
            else:
                self._demands[(src, dst)] = backlog - 1
            if len(src_busy) == self.n_hosts:
                break
        for key in exhausted:
            del self._demands[key]
        self.timeslots_run += 1
        self.packets_allocated += len(matched)
        return matched

    def run_timeslots(self, n):
        """Run ``n`` timeslots; returns total packets allocated."""
        total = 0
        for _ in range(n):
            total += len(self.allocate_timeslot())
        return total

    def is_maximal(self, matched):
        """Check maximality of a matching (test aid): no remaining
        demand could be added without conflicting."""
        src_busy = {s for s, _ in matched}
        dst_busy = {d for _, d in matched}
        return all(s in src_busy or d in dst_busy
                   for (s, d) in self._demands)
