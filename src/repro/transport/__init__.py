"""Endpoint transports for every scheme in the paper's evaluation.

``make_sender``/``make_receiver`` are the factory functions the packet
network uses to start flows; the scheme comes from the run's
:class:`~repro.sim.config.SimConfig`.
"""

from .base import ReceiverAgent, SenderBase
from .cubic import CubicSender
from .dctcp import DctcpSender
from .flowtune import FlowtuneSender
from .pfabric import PFabricSender
from .tcp import TcpSender
from .xcp import XcpSender

__all__ = ["SenderBase", "ReceiverAgent", "TcpSender", "CubicSender",
           "DctcpSender", "PFabricSender", "XcpSender", "FlowtuneSender",
           "SENDER_CLASSES", "make_sender", "make_receiver"]

#: scheme name -> sender class.  sfqCoDel is a queueing discipline;
#: its endpoints run Cubic (§6.5 "Cubic-over-sfqCoDel").
SENDER_CLASSES = {
    "tcp": TcpSender,
    "dctcp": DctcpSender,
    "pfabric": PFabricSender,
    "sfqcodel": CubicSender,
    "xcp": XcpSender,
    "flowtune": FlowtuneSender,
}


def make_sender(network, flow) -> SenderBase:
    """Instantiate the configured scheme's sender for ``flow``.

    For Flowtune, the host's control agent (if attached) is hooked to
    the sender's lifecycle so flowlet start/end notifications flow to
    the allocator.
    """
    scheme = network.config.scheme
    sender_cls = SENDER_CLASSES[scheme]
    sender = sender_cls(network, flow)
    if scheme == "flowtune":
        agent = network.hosts[flow.src].control_agent
        if agent is not None:
            agent.register(sender)
    return sender


def make_receiver(network, flow) -> ReceiverAgent:
    return ReceiverAgent(network, flow)
