"""TCP NewReno — the vanilla window law.

Serves three roles: the generic substrate other schemes extend
(DCTCP), the transport of Flowtune's fallback mode, and a sanity
baseline in tests.  Slow start doubles per RTT (one packet per ACK up
to ``ssthresh``), congestion avoidance adds one packet per RTT
(``1/cwnd`` per ACK), fast retransmit halves, RTO collapses to one
packet.
"""

from __future__ import annotations

from .base import SenderBase

__all__ = ["TcpSender"]


class TcpSender(SenderBase):
    name = "tcp"

    def on_new_ack(self, ack):
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd

    def on_loss(self):
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh

    def on_timeout(self):
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
