"""DCTCP (Alizadeh et al., SIGCOMM 2010).

Switches mark CE when instantaneous occupancy exceeds K
(:class:`~repro.sim.queues.EcnQueue`); the receiver echoes the mark of
*each* data packet (our per-packet selective ACKs give the accurate
echo DCTCP requires); the sender maintains the EWMA marked fraction

    alpha <- (1 - g) alpha + g F,

over windows of one RTT and, in any window containing marks, cuts

    cwnd <- cwnd (1 - alpha / 2)

once.  Loss handling falls back to NewReno.
"""

from __future__ import annotations

from .tcp import TcpSender

__all__ = ["DctcpSender"]


class DctcpSender(TcpSender):
    name = "dctcp"

    def __init__(self, network, flow):
        super().__init__(network, flow)
        self.alpha = 1.0  # start conservative, as the DCTCP paper does
        self._round_end = 0
        self._round_acks = 0
        self._round_marked = 0

    def on_new_ack(self, ack):
        self._round_acks += 1
        if ack.ece:
            self._round_marked += 1
        if self.cum >= self._round_end:
            self._end_round()
        # Growth: same as Reno (DCTCP only changes the decrease law).
        super().on_new_ack(ack)

    def _end_round(self):
        if self._round_acks:
            fraction = self._round_marked / self._round_acks
            g = self.config.dctcp_g
            self.alpha = (1.0 - g) * self.alpha + g * fraction
            if self._round_marked:
                self.cwnd = max(1.0, self.cwnd * (1.0 - self.alpha / 2.0))
        self._round_acks = 0
        self._round_marked = 0
        self._round_end = self.next_new
