"""pFabric (Alizadeh et al., SIGCOMM 2013) — priority is everything.

Rate control is "minimal": senders blast at (bounded) line rate and
rely on the fabric's priority-drop/priority-dequeue queues
(:class:`~repro.sim.queues.PFabricQueue`) to resolve contention in
shortest-remaining-first order.  Packets carry the flow's *remaining*
size as priority, so a flow's urgency rises as it drains.  Losses are
expected and recovered by a small fixed RTO (~3 RTTs); after several
consecutive timeouts the sender enters probe mode (single packet per
RTO) so starved flows don't waste fabric capacity — exactly the
behaviour that makes pFabric "not share fairly" in fig. 4 while
winning short-flow FCT in fig. 8.
"""

from __future__ import annotations

from .base import SenderBase

__all__ = ["PFabricSender"]


class PFabricSender(SenderBase):
    name = "pfabric"
    timeout_resend_all = False  # probe with the first hole only

    def __init__(self, network, flow):
        super().__init__(network, flow)
        self.cwnd = float(self.config.pfabric_cwnd_packets)
        # Fixed aggressive RTO; pFabric does not estimate conservatively.
        self.rto = self.config.pfabric_rto

    def window(self):
        if self.consecutive_timeouts >= self.config.pfabric_probe_after:
            return 1.0  # probe mode
        return self.cwnd

    def _priority(self):
        # Remaining packets at send time; smaller = served first.
        return float(self.flow.n_packets - self.n_acked)

    def on_new_ack(self, ack):
        # No window growth: the fabric schedules, not the endpoints.
        pass

    def on_loss(self):
        pass  # no multiplicative decrease

    def on_timeout(self):
        pass  # keep the window; probe mode handles persistent loss

    def _rtt_sample(self, rtt):
        # Keep the fixed RTO (pFabric uses a constant, small timeout).
        self.srtt = rtt if self.srtt is None else self.srtt
        self.rto = self.config.pfabric_rto
