"""Shared reliable-transport machinery for all compared schemes.

Every scheme in §6.5 needs the same substrate: per-packet selective
ACKs, cumulative-ACK tracking, duplicate-ACK fast retransmit, an RTO
timer with exponential backoff, and Jacobson/Karn RTT estimation.
:class:`SenderBase` implements all of it and exposes the hooks the
schemes differ on:

* :meth:`on_new_ack` — window growth law,
* :meth:`on_loss` — reaction to a fast-retransmit signal,
* :meth:`on_timeout` — reaction to an RTO,
* :meth:`window` — the current send window (packets),
* :meth:`_priority` / :meth:`_stamp` — per-packet header fields
  (pFabric priority, XCP congestion header).

The receiver (:class:`ReceiverAgent`) is scheme-independent: it
selectively acknowledges every data packet, echoes ECN CE marks
(DCTCP-accurate per-packet echo) and XCP feedback, and records the
delivery statistics the figures need.
"""

from __future__ import annotations

from collections import deque

from ..sim.engine import Timer
from ..sim.packet import ACK_BYTES, MSS_BYTES, Packet

__all__ = ["ReceiverAgent", "SenderBase"]

#: dup-ACK threshold for fast retransmit.
DUPACK_THRESHOLD = 3
#: RTO before the first RTT sample exists.
INITIAL_RTO = 1e-3


class ReceiverAgent:
    """Scheme-independent receiver: selective ACK + ECN/XCP echo."""

    __slots__ = ("network", "sim", "flow", "stats", "received", "cum")

    def __init__(self, network, flow):
        self.network = network
        self.sim = network.sim
        self.flow = flow
        self.stats = network.stats
        self.received = bytearray(flow.n_packets)
        self.cum = 0

    def on_data(self, packet: Packet):
        flow = self.flow
        seq = packet.seq
        if not self.received[seq]:
            self.received[seq] = 1
            flow.bytes_delivered += packet.size_bytes
            self.stats.record_delivery(packet, self.sim.now)
            while self.cum < flow.n_packets and self.received[self.cum]:
                self.cum += 1
            if self.cum == flow.n_packets and flow.finish_time is None:
                flow.finish_time = self.sim.now
        ack = Packet(flow, seq, ACK_BYTES, Packet.ACK, flow.reverse_route)
        ack.ack_seq = seq
        ack.ack_cum = self.cum
        ack.ece = packet.ecn_ce
        ack.xcp_feedback = packet.xcp_feedback
        ack.xcp_rtt = packet.xcp_rtt
        ack.priority = 0.0  # ACKs are always most-urgent in pFabric
        ack.hop = 0
        flow.reverse_route[0].send(ack)


class SenderBase:
    """Reliable window-based sender; subclasses define the control law."""

    #: On RTO, re-queue *all* unacked packets (go-back-N style).  The
    #: pFabric sender overrides this to probe with a single packet.
    timeout_resend_all = True

    def __init__(self, network, flow):
        self.network = network
        self.sim = network.sim
        self.config = network.config
        self.flow = flow
        n = flow.n_packets
        self.acked = bytearray(n)
        self.was_retransmitted = bytearray(n)
        self.sent_time = [0.0] * n
        self.n_acked = 0
        self.in_flight = set()
        self.rtx_queue = deque()
        self._rtx_pending = set()
        self.next_new = 0
        self.cum = 0
        self.dupacks = 0
        self.cwnd = float(self.config.initial_cwnd)
        self.ssthresh = float("inf")
        self.srtt = None
        self.rttvar = None
        self.rto = INITIAL_RTO
        self.timer = Timer(self.sim, self._on_rto)
        self.done = False
        self.consecutive_timeouts = 0
        self.completion_callbacks = []
        self.start_callbacks = []

    # ------------------------------------------------------------------
    # scheme hooks
    # ------------------------------------------------------------------
    def window(self) -> float:
        """Current send window in packets."""
        return self.cwnd

    def on_new_ack(self, ack: Packet):
        """Window growth on a first-time ACK."""

    def on_loss(self):
        """Reaction to a fast-retransmit (3 dup-ACK) loss signal."""

    def on_timeout(self):
        """Reaction to an RTO."""

    def _priority(self) -> float:
        """pFabric-style packet priority; 0 for FIFO schemes."""
        return 0.0

    def _stamp(self, packet: Packet):
        """Scheme-specific header fields (XCP)."""

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def start(self):
        self.flow.start_time = self.sim.now
        for callback in self.start_callbacks:
            callback(self)
        self.send_pending()

    def _pop_next_seq(self):
        while self.rtx_queue:
            seq = self.rtx_queue.popleft()
            self._rtx_pending.discard(seq)
            if not self.acked[seq]:
                return seq, True
        if self.next_new < self.flow.n_packets:
            seq = self.next_new
            self.next_new += 1
            return seq, False
        return None, False

    def _has_pending(self):
        return bool(self.rtx_queue) or self.next_new < self.flow.n_packets

    def send_pending(self):
        """Fill the window (window-based schemes; pacing overrides)."""
        while (not self.done and self._has_pending()
               and len(self.in_flight) < self.window()):
            seq, retransmit = self._pop_next_seq()
            if seq is None:
                break
            self.send_segment(seq, retransmit)

    def send_segment(self, seq, retransmit):
        flow = self.flow
        packet = Packet(flow, seq, flow.segment_bytes(seq), Packet.DATA,
                        flow.route)
        packet.sent_time = self.sim.now
        packet.is_retransmit = retransmit
        packet.priority = self._priority()
        self._stamp(packet)
        if retransmit:
            self.was_retransmitted[seq] = 1
        if flow.first_packet_time is None:
            flow.first_packet_time = self.sim.now
        self.sent_time[seq] = self.sim.now
        self.in_flight.add(seq)
        packet.hop = 0
        flow.route[0].send(packet)
        if not self.timer.armed:
            self.timer.restart(self.rto)

    # ------------------------------------------------------------------
    # receiving ACKs
    # ------------------------------------------------------------------
    def on_ack(self, ack: Packet):
        if self.done:
            return
        seq = ack.ack_seq
        if not self.acked[seq]:
            self.acked[seq] = 1
            self.n_acked += 1
            self.in_flight.discard(seq)
            if not self.was_retransmitted[seq]:  # Karn's rule
                self._rtt_sample(self.sim.now - self.sent_time[seq])
            self.consecutive_timeouts = 0
            self.on_new_ack(ack)
        if ack.ack_cum > self.cum:
            self.cum = ack.ack_cum
            self.dupacks = 0
            if self.n_acked < self.flow.n_packets:
                self.timer.restart(self.rto)
        elif seq > self.cum:
            # The receiver is seeing past a hole at ``cum``.
            self.dupacks += 1
            if self.dupacks == DUPACK_THRESHOLD:
                self.dupacks = 0
                self._fast_retransmit()
        if self.n_acked >= self.flow.n_packets:
            self._complete()
        else:
            self.send_pending()

    def _fast_retransmit(self):
        seq = self.cum
        if self.acked[seq] or seq in self._rtx_pending:
            return
        self.in_flight.discard(seq)
        self.rtx_queue.append(seq)
        self._rtx_pending.add(seq)
        self.on_loss()

    def _on_rto(self):
        if self.done:
            return
        self.consecutive_timeouts += 1
        if self.timeout_resend_all:
            # Everything outstanding is presumed lost.
            for seq in sorted(self.in_flight):
                if not self.acked[seq] and seq not in self._rtx_pending:
                    self.rtx_queue.append(seq)
                    self._rtx_pending.add(seq)
            self.in_flight.clear()
        else:
            seq = self._first_unacked()
            if seq is not None and seq not in self._rtx_pending:
                self.in_flight.discard(seq)
                self.rtx_queue.append(seq)
                self._rtx_pending.add(seq)
        self.on_timeout()
        self.rto = min(self.rto * 2.0, self.config.max_rto)
        self.timer.restart(self.rto)
        self.send_pending()

    def _first_unacked(self):
        for seq in range(self.cum, self.flow.n_packets):
            if not self.acked[seq]:
                return seq
        return None

    # ------------------------------------------------------------------
    # RTT estimation (Jacobson/Karels)
    # ------------------------------------------------------------------
    def _rtt_sample(self, rtt):
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = min(max(self.srtt + 4.0 * self.rttvar,
                           self.config.min_rto), self.config.max_rto)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def abort(self):
        """Stop sending immediately (fig. 4's "a sender stops").

        Completion callbacks still fire, so a Flowtune sender emits its
        flowlet-end notification.
        """
        self._complete()

    def _complete(self):
        if self.done:
            return
        self.done = True
        self.timer.cancel()
        # Free the per-flow agent slots (long churny runs).
        self.network.hosts[self.flow.src].senders.pop(self.flow.flow_id, None)
        self.network.hosts[self.flow.dst].receivers.pop(self.flow.flow_id,
                                                        None)
        for callback in self.completion_callbacks:
            callback(self)

    @property
    def mss(self):
        return MSS_BYTES
