"""XCP endpoints (Katabi, Handley, Rohrs, SIGCOMM 2002).

Senders advertise their congestion window and RTT in every packet's
congestion header and request feedback; each router on the path
computes per-packet feedback from its efficiency/fairness controller
(:class:`~repro.sim.queues.XcpController`) and writes the *minimum*
along the path.  The receiver echoes it; the sender applies

    cwnd <- max(cwnd + feedback, 1 packet)

per ACK.  XCP converges without loss or queues, but hands out spare
bandwidth over multiple control intervals — the conservatism §6.3 and
fig. 8 report.
"""

from __future__ import annotations

from .base import SenderBase

__all__ = ["XcpSender"]

#: RTT guess advertised before the first sample (a 4-hop fabric RTT).
INITIAL_RTT_GUESS = 30e-6


class XcpSender(SenderBase):
    name = "xcp"

    def __init__(self, network, flow):
        super().__init__(network, flow)
        self.cwnd = float(self.config.xcp_initial_cwnd)
        self.cwnd_bytes = self.cwnd * self.mss

    def _stamp(self, packet):
        packet.xcp_cwnd_bytes = self.cwnd_bytes
        packet.xcp_rtt = self.srtt if self.srtt is not None \
            else INITIAL_RTT_GUESS
        # Request: ask for one MSS of growth per packet; routers clamp.
        packet.xcp_feedback = float(self.mss)

    def on_new_ack(self, ack):
        self.cwnd_bytes = max(self.cwnd_bytes + ack.xcp_feedback,
                              float(self.mss))
        self.cwnd = self.cwnd_bytes / self.mss

    def on_loss(self):
        # Losses are rare under XCP; fall back to a halving.
        self.cwnd_bytes = max(self.cwnd_bytes / 2.0, float(self.mss))
        self.cwnd = self.cwnd_bytes / self.mss

    def on_timeout(self):
        self.cwnd_bytes = float(self.mss)
        self.cwnd = 1.0
