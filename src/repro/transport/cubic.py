"""CUBIC (Ha, Rhee, Xu 2008) — the sender under sfqCoDel in §6.5.

Window growth is a cubic of the time since the last loss,

    W(t) = C (t - K)^3 + W_max,       K = cbrt(W_max (1 - beta) / C),

so it plateaus near the previous loss point (``W_max``) and probes
beyond it aggressively afterward.  The paper pairs "Cubic over
sfqCoDel"; CoDel's dequeue drops are what CUBIC reacts to.
"""

from __future__ import annotations

from .base import SenderBase

__all__ = ["CubicSender"]


class CubicSender(SenderBase):
    name = "cubic"

    def __init__(self, network, flow):
        super().__init__(network, flow)
        self._w_max = self.cwnd
        self._epoch_start = None
        self._k = 0.0

    def _cubic_window(self, elapsed):
        c = self.config.cubic_c
        return c * (elapsed - self._k) ** 3 + self._w_max

    def on_new_ack(self, ack):
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
            return
        if self._epoch_start is None:
            self._epoch_start = self.sim.now
            self._w_max = max(self._w_max, self.cwnd)
            c = self.config.cubic_c
            self._k = ((self._w_max * (1.0 - self.config.cubic_beta) / c)
                       ** (1.0 / 3.0))
        target = self._cubic_window(self.sim.now - self._epoch_start)
        if target > self.cwnd:
            # Approach the cubic target within one RTT.
            self.cwnd += min((target - self.cwnd) / max(self.cwnd, 1.0), 1.0)
        else:
            self.cwnd += 0.01 / max(self.cwnd, 1.0)  # slow probe

    def on_loss(self):
        self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.config.cubic_beta, 1.0)
        self.ssthresh = self.cwnd
        self._epoch_start = None

    def on_timeout(self):
        self._w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.config.cubic_beta, 2.0)
        self.cwnd = 1.0
        self._epoch_start = None
