"""Flowtune endpoints: TCP until the first allocation, then pacing.

§6.2: "When opening a new connection, servers start a regular TCP
connection, and in parallel send a notification to the allocator.
Whenever a server receives a rate update for a flow from the
allocator, it opens the flow's TCP window and paces packets on that
flow according to the allocated rate."

So the sender boots as NewReno and, on the first rate update, switches
to rate pacing (window effectively open; reliability machinery stays
armed, though drops are rare because F-NORM keeps links under
capacity).  If ``rate_expiry`` is configured, an endpoint whose rate
has gone stale falls back to TCP — the paper's allocator-failure story
(§2): "if the allocator fails, the rates expire and endpoint
congestion control (e.g., TCP) takes over, using the previously
allocated rates as a starting point".
"""

from __future__ import annotations

from .tcp import TcpSender

__all__ = ["FlowtuneSender"]

#: Floor on the paced rate so pacing intervals stay finite.
MIN_PACED_GBPS = 1e-3
#: Ceiling on one pacing gap (guards pathological tiny rates).
MAX_PACING_GAP = 5e-3


class FlowtuneSender(TcpSender):
    name = "flowtune"

    def __init__(self, network, flow):
        super().__init__(network, flow)
        self.mode = "window"          # "window" (TCP) or "paced"
        self.cwnd = float(network.config.flowtune_initial_cwnd)
        self.rate_bps = 0.0
        self.last_rate_update = None
        self._pacing_armed = False
        self._expiry_check_armed = False

    # ------------------------------------------------------------------
    # allocator interface
    # ------------------------------------------------------------------
    def set_rate(self, rate_gbps):
        """Apply a rate update from the allocator."""
        if self.done:
            return
        self.rate_bps = max(rate_gbps, MIN_PACED_GBPS) * 1e9
        self.last_rate_update = self.sim.now
        if self.mode != "paced":
            self.mode = "paced"
            expiry = self.config.rate_expiry
            if expiry > 0 and not self._expiry_check_armed:
                self._expiry_check_armed = True
                self.sim.after(expiry, self._check_expiry)
        if not self._pacing_armed:
            self.send_pending()

    def _check_expiry(self):
        self._expiry_check_armed = False
        if self.done or self.mode != "paced":
            return
        expiry = self.config.rate_expiry
        age = self.sim.now - self.last_rate_update
        if age >= expiry:
            # Allocator is silent: fall back to TCP, seeded with the
            # window equivalent of the last allocated rate (§2).
            rtt = self.srtt if self.srtt is not None else 30e-6
            self.mode = "window"
            self.cwnd = max(2.0, self.rate_bps * rtt / (8.0 * self.mss))
            self.ssthresh = self.cwnd
            self.send_pending()
        else:
            self._expiry_check_armed = True
            self.sim.after(expiry - age, self._check_expiry)

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    def send_pending(self):
        # Flowlets ride existing connections (§1: long-lived flows
        # generate multiple flowlets), so data flows immediately in the
        # TCP window while the notification races to the allocator.
        if self.mode == "paced":
            if self._has_pending() and not self._pacing_armed:
                self._arm_pacing(0.0)
        else:
            super().send_pending()

    def _arm_pacing(self, delay):
        self._pacing_armed = True
        self.sim.after(delay, self._pace_tick)

    def _pace_tick(self):
        self._pacing_armed = False
        if self.done or self.mode != "paced":
            return
        seq, retransmit = self._pop_next_seq()
        if seq is None:
            return  # on_ack re-arms when retransmissions appear
        self.send_segment(seq, retransmit)
        gap = min(self.flow.segment_bytes(seq) * 8.0 / self.rate_bps,
                  MAX_PACING_GAP)
        self._arm_pacing(gap)

    def window(self):
        if self.mode == "paced":
            return float("inf")  # pacing, not the window, limits sending
        return self.cwnd
