"""Flow-completion-time analysis (figs. 8's bins and speedups).

The paper normalizes each flow's completion time "by the time it would
take to send out and receive all its bytes on an empty network", bins
flows by length in packets (1, 1-10, 10-100, 100-1000, large), and
plots the p99 ratio between a scheme and Flowtune per bin and load.
"""

from __future__ import annotations

import numpy as np

from ..sim.packet import packets_for

__all__ = ["SIZE_BINS", "bin_of", "ideal_fct", "normalized_fcts",
           "p99_by_bin", "speedup_by_bin"]

#: (label, min packets inclusive, max packets inclusive).
SIZE_BINS = (
    ("1 packet", 1, 1),
    ("1-10 packets", 2, 10),
    ("10-100 packets", 11, 100),
    ("100-1000 packets", 101, 1000),
    ("large", 1001, float("inf")),
)


def bin_of(n_packets):
    """Bin label for a flow of ``n_packets``."""
    for label, low, high in SIZE_BINS:
        if low <= n_packets <= high:
            return label
    raise ValueError(f"unbinnable packet count {n_packets}")


def ideal_fct(size_bytes, one_way_delay, bottleneck_gbps,
              per_packet_overhead=0.0):
    """Empty-network completion time: propagation + serialization."""
    n_packets = packets_for(size_bytes)
    wire_bytes = size_bytes + n_packets * 58  # headers per segment
    serialization = wire_bytes * 8.0 / (bottleneck_gbps * 1e9)
    return one_way_delay + serialization + per_packet_overhead * n_packets


def normalized_fcts(stats, topology):
    """flow_id -> (bin label, FCT / ideal FCT) for completed flows."""
    out = {}
    for flow in stats.completed_flows():
        hops = flow.n_hops
        one_way = (topology.two_hop_rtt() if hops <= 2
                   else topology.four_hop_rtt()) / 2.0
        ideal = ideal_fct(flow.size_bytes, one_way, topology.host_capacity)
        out[flow.flow_id] = (bin_of(flow.n_packets), flow.fct / ideal)
    return out


def p99_by_bin(normalized):
    """bin label -> p99 normalized FCT (bins with >= 5 flows only)."""
    grouped = {}
    for label, slowdown in normalized.values():
        grouped.setdefault(label, []).append(slowdown)
    return {label: float(np.percentile(np.asarray(values), 99))
            for label, values in grouped.items() if len(values) >= 5}


def speedup_by_bin(scheme_normalized, flowtune_normalized):
    """Fig. 8's y-axis: p99(scheme) / p99(Flowtune) per bin.

    Computed over the *common* completed flows so the ratio compares
    identical traffic.
    """
    common = set(scheme_normalized) & set(flowtune_normalized)
    scheme_common = {f: scheme_normalized[f] for f in common}
    flowtune_common = {f: flowtune_normalized[f] for f in common}
    scheme_p99 = p99_by_bin(scheme_common)
    flowtune_p99 = p99_by_bin(flowtune_common)
    return {label: scheme_p99[label] / flowtune_p99[label]
            for label in scheme_p99 if label in flowtune_p99
            and flowtune_p99[label] > 0}
