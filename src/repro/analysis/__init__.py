"""Post-processing metrics for the paper's figures."""

from .convergence import (convergence_time, fair_share_profile,
                          time_in_fairness)
from .fairness import (fairness_score, flow_rates, jain_index,
                       relative_fairness)
from .fct import (SIZE_BINS, bin_of, ideal_fct, normalized_fcts,
                  p99_by_bin, speedup_by_bin)
from .tables import format_series, format_table

__all__ = ["SIZE_BINS", "bin_of", "ideal_fct", "normalized_fcts",
           "p99_by_bin", "speedup_by_bin", "flow_rates", "fairness_score",
           "relative_fairness", "jain_index", "convergence_time",
           "fair_share_profile", "time_in_fairness", "format_table",
           "format_series"]
