"""Convergence-time measurement (§6.3 / fig. 4).

Given per-flow throughput time series and the ideal fair share over
time, find how long after each churn event the allocation stays within
a tolerance of fair — "Flowtune converges within ~100 µs, orders of
magnitude faster than other schemes".
"""

from __future__ import annotations

import numpy as np

__all__ = ["fair_share_profile", "convergence_time", "time_in_fairness"]


def fair_share_profile(n_flows_active, capacity_gbps):
    """Ideal per-flow rate when ``n`` flows share one bottleneck."""
    n = np.asarray(n_flows_active, dtype=np.float64)
    with np.errstate(divide="ignore"):
        share = np.where(n > 0, capacity_gbps / np.maximum(n, 1), 0.0)
    return share


def convergence_time(times, series, event_time, target, tolerance=0.15,
                     hold=500e-6):
    """Seconds from ``event_time`` until ``series`` stays within
    ``tolerance`` (relative) of ``target`` for at least ``hold``.

    Returns ``inf`` if it never converges within the series.
    """
    times = np.asarray(times)
    series = np.asarray(series)
    mask = times >= event_time
    times, series = times[mask], series[mask]
    if len(times) == 0:
        return float("inf")
    within = np.abs(series - target) <= tolerance * max(target, 1e-9)
    run_start = None
    for t, ok in zip(times, within):
        if ok:
            if run_start is None:
                run_start = t
            if t - run_start >= hold or t == times[-1]:
                return run_start - event_time
        else:
            run_start = None
    if run_start is not None:
        return run_start - event_time
    return float("inf")


def time_in_fairness(times, all_series, n_active_of_t, capacity_gbps,
                     tolerance=0.25):
    """Fraction of time every active flow is within tolerance of fair.

    ``all_series`` is a (n_flows, n_times) matrix; ``n_active_of_t``
    gives the number of active flows at each time sample.
    """
    times = np.asarray(times)
    matrix = np.asarray(all_series)
    n_active = np.asarray(n_active_of_t)
    fair = fair_share_profile(n_active, capacity_gbps)
    ok = np.ones(len(times), dtype=bool)
    for row in matrix:
        active = row > 0.01 * capacity_gbps
        deviation = np.abs(row - fair) > tolerance * np.maximum(fair, 1e-9)
        ok &= ~(active & deviation)
    return float(np.mean(ok))
