"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and
figures report; this module keeps the formatting in one place.
"""

from __future__ import annotations

__all__ = ["format_table", "format_series"]


def format_table(headers, rows, title=None):
    """Monospace table with right-aligned numeric columns."""
    def render(cell):
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rendered)) if rendered
              else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name, pairs, x_label="x", y_label="y"):
    """A named (x, y) series as an aligned two-column block."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in pairs:
        x_str = f"{x:.4g}" if isinstance(x, float) else str(x)
        y_str = f"{y:.4g}" if isinstance(y, float) else str(y)
        lines.append(f"  {x_str:>10}  {y_str:>12}")
    return "\n".join(lines)
