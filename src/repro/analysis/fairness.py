"""Proportional-fairness scoring (fig. 11).

"A network where flows are assigned rates r_i gets score
sum_i log2(r_i).  This translates to gaining a point when a flow gets
2x higher rate, losing a point when a flow gets 2x lower rate."

A completed flow's achieved rate is its size over its FCT.  Fig. 11
plots per-flow fairness *relative to Flowtune*, i.e. the mean over
matched flows of ``log2(r_scheme) - log2(r_flowtune)`` — negative
means the scheme allocated further from proportional fairness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["flow_rates", "fairness_score", "relative_fairness",
           "jain_index"]


def flow_rates(stats):
    """flow_id -> achieved average rate (bit/s) for completed flows."""
    rates = {}
    for flow in stats.completed_flows():
        fct = flow.fct
        if fct and fct > 0:
            rates[flow.flow_id] = flow.size_bytes * 8.0 / fct
    return rates


def fairness_score(rates):
    """``sum log2(rate)`` over flows (rates in any consistent unit)."""
    values = np.asarray(list(rates.values()))
    if len(values) == 0:
        return 0.0
    return float(np.sum(np.log2(np.maximum(values, 1e-12))))


def relative_fairness(scheme_rates, flowtune_rates):
    """Mean per-flow ``log2`` rate gap vs Flowtune (fig. 11 y-axis)."""
    common = sorted(set(scheme_rates) & set(flowtune_rates),
                    key=lambda k: str(k))
    if not common:
        return float("nan")
    gaps = [np.log2(max(scheme_rates[f], 1e-12))
            - np.log2(max(flowtune_rates[f], 1e-12)) for f in common]
    return float(np.mean(gaps))


def jain_index(rates):
    """Jain's fairness index — an auxiliary sanity metric for tests."""
    values = np.asarray(list(rates.values()), dtype=np.float64)
    if len(values) == 0:
        return 1.0
    return float(values.sum() ** 2 / (len(values) * (values ** 2).sum()))
