"""Pre-wired fluid experiments for figures 5-7, 12 and 13.

Each function builds the §6.2 setup (two-tier Clos, Poisson churn from
a Facebook workload, 10 µs allocator iterations) at a configurable
scale and returns the series the corresponding paper figure plots.
The benchmark harness and the examples call these; tests run them at
tiny scale.
"""

from __future__ import annotations

import numpy as np

from ..core.fgm import FgmOptimizer
from ..core.gradient import GradientOptimizer
from ..core.ned import NedOptimizer
from ..core.normalization import FNormalizer, NullNormalizer, UNormalizer
from ..core.realtime import GradientRtOptimizer, NedRtOptimizer
from ..sampling import SCHEDULER_MODES, make_scheduler
from ..topology.clos import TwoTierClos
from ..workloads.distributions import WORKLOADS
from ..workloads.generator import PoissonFlowletGenerator
from .churn import FluidSimulator

__all__ = [
    "build_fluid_setup", "measure_update_traffic", "threshold_reduction",
    "network_size_sweep", "over_allocation_by_algorithm",
    "normalization_throughput", "fct_by_scheme",
    "OVERALLOCATION_ALGORITHMS",
]

#: fig. 12's algorithm set.
OVERALLOCATION_ALGORITHMS = {
    "NED": (NedOptimizer, {"gamma": 1.0}),
    "NED-RT": (NedRtOptimizer, {"gamma": 1.0}),
    "Gradient": (GradientOptimizer, {"gamma": 0.02}),
    "Gradient-RT": (GradientRtOptimizer, {"gamma": 0.02}),
    "FGM": (FgmOptimizer, {}),
}


def build_fluid_setup(workload="web", load=0.6, n_racks=9, hosts_per_rack=16,
                      n_spines=4, threshold=0.01, optimizer_cls=NedOptimizer,
                      optimizer_kwargs=None, normalizer=None, gamma=0.4,
                      tick=10e-6, seed=0, optimal_every=0, mode="flowtune",
                      scheduler_kwargs=None):
    """Construct (topology, scheduler, generator, simulator) for §6.2.

    ``mode`` selects the rate-assignment scheme through
    :func:`repro.make_scheduler` (``"flowtune"``, ``"sampled"``,
    ``"ecmp"``); the NUM knobs (``optimizer_cls`` … ``gamma``) apply
    to the priced modes only, and ``scheduler_kwargs`` passes extra
    construction arguments (detector knobs, ``mice_refresh``, …)
    straight to the factory.
    """
    topology = TwoTierClos(n_racks=n_racks, hosts_per_rack=hosts_per_rack,
                           n_spines=n_spines)
    extra = dict(scheduler_kwargs or {})
    if mode == "ecmp":
        allocator = make_scheduler(topology.link_set(), mode="ecmp",
                                   update_threshold=threshold, **extra)
    else:
        kwargs = dict(optimizer_kwargs or {})
        if "gamma" not in kwargs and optimizer_cls is not FgmOptimizer:
            kwargs["gamma"] = gamma
        allocator = make_scheduler(
            topology.link_set(), mode=mode, optimizer_cls=optimizer_cls,
            normalizer=(normalizer if normalizer is not None
                        else FNormalizer()),
            update_threshold=threshold, optimizer_kwargs=kwargs, **extra)
    workload_dist = WORKLOADS[workload]() if isinstance(workload, str) else workload
    generator = PoissonFlowletGenerator(
        workload_dist, n_hosts=topology.n_hosts, load=load,
        host_capacity_gbps=topology.host_capacity, seed=seed)
    simulator = FluidSimulator(topology, allocator, generator, tick=tick,
                               optimal_every=optimal_every)
    return topology, allocator, generator, simulator


def measure_update_traffic(workload="web", load=0.6, threshold=0.01,
                           duration=5e-3, warmup=1e-3, seed=0, **scale):
    """Fig. 5 point: control-traffic fractions of network capacity."""
    topology, _, _, simulator = build_fluid_setup(
        workload=workload, load=load, threshold=threshold, seed=seed, **scale)
    metrics = simulator.run(duration, warmup=warmup)
    capacity = topology.bisection_capacity()
    return {
        "workload": workload if isinstance(workload, str) else workload.name,
        "load": load,
        "threshold": threshold,
        "from_allocator": metrics.fraction_of_capacity(capacity, "from"),
        "to_allocator": metrics.fraction_of_capacity(capacity, "to"),
        "n_rate_updates": metrics.n_rate_updates,
        "n_start_messages": metrics.n_start_messages,
        "metrics": metrics,
    }


def threshold_reduction(workload="web", load=0.6, thresholds=(0.01, 0.02,
                        0.03, 0.04, 0.05), duration=5e-3, warmup=1e-3,
                        seed=0, **scale):
    """Fig. 6 series: % reduction in from-allocator traffic vs 0.01."""
    results = {}
    for threshold in thresholds:
        point = measure_update_traffic(workload=workload, load=load,
                                       threshold=threshold,
                                       duration=duration, warmup=warmup,
                                       seed=seed, **scale)
        results[threshold] = point["from_allocator"]
    baseline = max(results[thresholds[0]], 1e-12)
    return {t: 100.0 * (1.0 - results[t] / baseline) for t in thresholds}


def network_size_sweep(workload="web", loads=(0.4, 0.6, 0.8),
                       hosts_per_rack=16, n_spines=4,
                       server_counts=(128, 256, 512, 1024, 2048),
                       duration=2e-3, warmup=0.5e-3, seed=0):
    """Fig. 7 series: from-allocator fraction vs network size."""
    series = {load: [] for load in loads}
    for n_servers in server_counts:
        n_racks = max(2, n_servers // hosts_per_rack)
        for load in loads:
            point = measure_update_traffic(
                workload=workload, load=load, duration=duration,
                warmup=warmup, seed=seed, n_racks=n_racks,
                hosts_per_rack=hosts_per_rack, n_spines=n_spines)
            series[load].append((n_racks * hosts_per_rack,
                                 point["from_allocator"]))
    return series


def fct_by_scheme(workload="web", load=0.6, duration=5e-3, warmup=1e-3,
                  seed=0, schemes=SCHEDULER_MODES, scheduler_kwargs=None,
                  **scale):
    """Fig. 8-style series: flow-completion times per allocation scheme.

    Replays the *same* Poisson flowlet sequence (same workload, load
    and seed) under each scheme — full Flowtune pricing, sieve-sampled
    pricing (elephants only, fed by the simulator's per-tick usage
    stream), and pure ECMP fair share — and reports the FCT
    percentiles the paper's fig. 8 compares, plus each scheme's
    priced-set size so the sampled point is interpretable.
    ``scheduler_kwargs`` maps scheme name -> extra construction
    arguments (e.g. detector knobs for ``"sampled"``).
    """
    per_scheme_kwargs = dict(scheduler_kwargs or {})
    results = {}
    for scheme in schemes:
        _, allocator, _, simulator = build_fluid_setup(
            workload=workload, load=load, seed=seed, mode=scheme,
            scheduler_kwargs=per_scheme_kwargs.get(scheme), **scale)
        metrics = simulator.run(duration, warmup=warmup)
        fcts = metrics.fcts()
        n_flows = getattr(allocator, "n_flows", 0)
        n_priced = n_flows
        if hasattr(allocator, "n_priced"):
            n_priced = allocator.n_priced
        elif scheme == "ecmp":
            n_priced = 0
        results[scheme] = {
            "n_completed": int(len(fcts)),
            "p50_fct_us": 1e6 * float(np.percentile(fcts, 50)) if len(fcts) else None,
            "p99_fct_us": 1e6 * float(np.percentile(fcts, 99)) if len(fcts) else None,
            "mean_fct_us": 1e6 * float(fcts.mean()) if len(fcts) else None,
            "n_active_end": int(simulator.n_active),
            "n_priced_end": int(n_priced),
            "priced_fraction_end": (float(n_priced) / n_flows
                                    if n_flows else 0.0),
        }
    return results


def over_allocation_by_algorithm(load=0.6, workload="web", duration=3e-3,
                                 warmup=0.5e-3, seed=0,
                                 algorithms=None, **scale):
    """Fig. 12 series: mean over-capacity Gbit/s without normalization."""
    algorithms = algorithms if algorithms is not None \
        else OVERALLOCATION_ALGORITHMS
    results = {}
    for name, (cls, kwargs) in algorithms.items():
        _, _, _, simulator = build_fluid_setup(
            workload=workload, load=load, optimizer_cls=cls,
            optimizer_kwargs=dict(kwargs), normalizer=NullNormalizer(),
            threshold=0.0, seed=seed, **scale)
        metrics = simulator.run(duration, warmup=warmup)
        results[name] = metrics.mean_over_allocation()
    return results


def normalization_throughput(load=0.6, workload="web", duration=3e-3,
                             warmup=0.5e-3, seed=0, optimal_every=20,
                             **scale):
    """Fig. 13 series: achieved/optimal throughput per (algo, norm)."""
    combos = {
        ("NED", "F-NORM"): (NedOptimizer, {"gamma": 1.0}, FNormalizer()),
        ("NED", "U-NORM"): (NedOptimizer, {"gamma": 1.0}, UNormalizer()),
        ("Gradient", "F-NORM"): (GradientOptimizer, {"gamma": 0.02},
                                 FNormalizer()),
        ("Gradient", "U-NORM"): (GradientOptimizer, {"gamma": 0.02},
                                 UNormalizer()),
    }
    results = {}
    for (algo, norm), (cls, kwargs, normalizer) in combos.items():
        _, _, _, simulator = build_fluid_setup(
            workload=workload, load=load, optimizer_cls=cls,
            optimizer_kwargs=dict(kwargs), normalizer=normalizer,
            threshold=0.0, seed=seed, optimal_every=optimal_every, **scale)
        metrics = simulator.run(duration, warmup=warmup)
        results[(algo, norm)] = metrics.throughput_fraction_of_optimal()
    return results
