"""Flowlet-level (fluid) simulation of allocator dynamics.

The allocator-side experiments (figures 5-7, 12, 13) depend only on
the *flowlet event stream* — arrivals, departures, allocated rates —
not on per-packet behaviour.  This module simulates exactly that: time
advances in allocator iterations (10 µs in §6.2); between iterations
every flow transmits at the rate its endpoint was last *notified* of,
which is how Flowtune endpoints actually behave between updates.

The fluid model makes the large-network experiments tractable (fig. 7
runs 2048 servers) while using the very same allocator object the
packet-level simulation embeds — nothing is reimplemented.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..control.messages import (FLOWLET_END_BYTES, FLOWLET_START_BYTES,
                                RATE_UPDATE_BYTES, batched_wire_bytes,
                                wire_bytes)
from ..core.optimizer import solve_to_optimal
from ..sampling.scheduler import RateScheduler

__all__ = ["FluidFlowRecord", "FluidMetrics", "FluidSimulator"]


@dataclass
class FluidFlowRecord:
    """Lifetime bookkeeping for one flowlet in the fluid model."""

    flow_id: int
    src: int
    dst: int
    arrival: float
    size_bytes: float
    remaining_bytes: float
    completion: float | None = None

    @property
    def fct(self):
        if self.completion is None:
            return None
        return self.completion - self.arrival


@dataclass
class FluidMetrics:
    """Per-tick series and aggregate counters from a fluid run."""

    tick: float
    times: list = field(default_factory=list)
    n_active: list = field(default_factory=list)
    #: Gbit/s allocated above capacity, summed over links (fig. 12).
    over_allocation: list = field(default_factory=list)
    #: total allocated throughput (Gbit/s) after normalization.
    total_rate: list = field(default_factory=list)
    #: total throughput of a converged NED solve (fig. 13 "optimal");
    #: sampled every ``optimal_every`` ticks, aligned to optimal_times.
    optimal_times: list = field(default_factory=list)
    optimal_rate: list = field(default_factory=list)
    achieved_at_optimal: list = field(default_factory=list)
    #: wire bytes of control traffic, by direction.
    bytes_to_allocator: float = 0.0
    bytes_from_allocator: float = 0.0
    n_start_messages: int = 0
    n_end_messages: int = 0
    n_rate_updates: int = 0
    completed: list = field(default_factory=list)
    duration: float = 0.0

    # ------------------------------------------------------------------
    # derived quantities used by the figures
    # ------------------------------------------------------------------
    def fraction_of_capacity(self, network_capacity_gbps, direction="from"):
        """Control traffic as a fraction of network capacity (fig. 5)."""
        if self.duration <= 0:
            return 0.0
        byte_count = (self.bytes_from_allocator if direction == "from"
                      else self.bytes_to_allocator)
        gbits = byte_count * 8.0 / 1e9
        return gbits / (network_capacity_gbps * self.duration)

    def mean_over_allocation(self):
        """Mean over-capacity allocation in Gbit/s (fig. 12 y-axis)."""
        if not self.over_allocation:
            return 0.0
        return float(np.mean(self.over_allocation))

    def peak_over_allocation(self):
        if not self.over_allocation:
            return 0.0
        return float(np.max(self.over_allocation))

    def throughput_fraction_of_optimal(self):
        """Mean achieved/optimal throughput ratio (fig. 13 y-axis)."""
        if not self.optimal_rate:
            return float("nan")
        achieved = np.asarray(self.achieved_at_optimal)
        optimal = np.maximum(np.asarray(self.optimal_rate), 1e-12)
        return float(np.mean(achieved / optimal))

    def fcts(self):
        """Completed flowlet FCTs in seconds."""
        return np.array([r.fct for r in self.completed])


class FluidSimulator:
    """Drive a :class:`~repro.sampling.RateScheduler` with Poisson churn.

    Parameters
    ----------
    topology:
        Provides routes and the capacity denominator.
    allocator:
        The scheduler under test — full Flowtune, sampled Flowtune or
        pure ECMP (see :func:`repro.make_scheduler`).  When the
        scheduler consumes the §6.2 usage stream (``wants_usage``),
        the transmit phase reports each flow's cumulative sent bytes
        every tick, which is what feeds elephant detection.
    generator:
        A :class:`~repro.workloads.PoissonFlowletGenerator`.
    tick:
        Allocator iteration period; §6.2 uses 10 µs.
    optimal_every:
        If > 0, every that many ticks solve the NUM problem to
        convergence on a cloned flow table and record achieved vs
        optimal throughput (fig. 13's methodology).  Expensive, and
        only meaningful for schedulers that *have* a NUM problem (a
        full priced flow table) — pure ECMP or sampled schedulers are
        rejected.
    """

    def __init__(self, topology, allocator: RateScheduler, generator,
                 tick: float = 10e-6, optimal_every: int = 0):
        self.topology = topology
        self.allocator = allocator
        self.generator = generator
        self.tick = float(tick)
        self.optimal_every = int(optimal_every)
        if self.optimal_every and not hasattr(allocator, "optimizer"):
            raise ValueError(
                "optimal_every needs a scheduler with a NUM optimizer "
                f"over all flows; {type(allocator).__name__} has none")
        self._wants_usage = bool(getattr(allocator, "wants_usage", False))
        self._active: dict[int, FluidFlowRecord] = {}
        self._notified_rates: dict[int, float] = {}
        self._now = 0.0

    @property
    def now(self):
        return self._now

    @property
    def n_active(self):
        return len(self._active)

    def run(self, duration, warmup: float = 0.0) -> FluidMetrics:
        """Advance the fluid model by ``duration`` seconds.

        Metrics are only accumulated after ``warmup`` (flow population
        ramp-up would otherwise bias overhead fractions downward).
        """
        metrics = FluidMetrics(tick=self.tick)
        end_time = self._now + duration
        measure_from = self._now + warmup
        tick_index = 0
        while self._now < end_time:
            self._now = min(self._now + self.tick, end_time)
            measuring = self._now > measure_from
            self._admit_arrivals(metrics, measuring)
            result = self.allocator.iterate(1)
            self._account_updates(result, metrics, measuring)
            if measuring:
                # Sample while the rate vector is still aligned with the
                # flow table (transmit below removes finished flows).
                self._sample(result, metrics, tick_index)
            self._transmit(metrics, measuring)
            tick_index += 1
        metrics.duration = max(0.0, end_time - measure_from)
        return metrics

    # ------------------------------------------------------------------
    # per-tick phases
    # ------------------------------------------------------------------
    def _admit_arrivals(self, metrics, measuring):
        starts = []
        for arrival in self.generator.arrivals_until(self._now):
            route = self.topology.route(arrival.src, arrival.dst,
                                        arrival.flow_id)
            starts.append((arrival.flow_id, route))
            self._active[arrival.flow_id] = FluidFlowRecord(
                flow_id=arrival.flow_id, src=arrival.src, dst=arrival.dst,
                arrival=arrival.time, size_bytes=arrival.size_bytes,
                remaining_bytes=arrival.size_bytes)
            if measuring:
                metrics.n_start_messages += 1
                metrics.bytes_to_allocator += wire_bytes(FLOWLET_START_BYTES)
        if starts:
            self.allocator.apply_churn(starts=starts)

    def _account_updates(self, result, metrics, measuring):
        if result.updates:
            per_destination: dict[int, list] = {}
            for update in result.updates:
                self._notified_rates[update.flow_id] = update.rate
                record = self._active.get(update.flow_id)
                if record is None:
                    continue
                per_destination.setdefault(record.src, []).append(
                    RATE_UPDATE_BYTES)
            if measuring:
                metrics.n_rate_updates += len(result.updates)
                for payloads in per_destination.values():
                    metrics.bytes_from_allocator += batched_wire_bytes(payloads)

    def _transmit(self, metrics, measuring):
        finished = []
        tick = self.tick
        report = (self.allocator.report_usage if self._wants_usage
                  else None)
        for flow_id, record in self._active.items():
            rate_gbps = self._notified_rates.get(flow_id, 0.0)
            record.remaining_bytes -= rate_gbps * 1e9 * tick / 8.0
            if report is not None:
                report(flow_id, record.size_bytes
                       - max(record.remaining_bytes, 0.0))
            if record.remaining_bytes <= 1e-9:
                finished.append(flow_id)
        for flow_id in finished:
            record = self._active.pop(flow_id)
            record.completion = self._now
            self._notified_rates.pop(flow_id, None)
            if measuring:
                metrics.completed.append(record)
                metrics.n_end_messages += 1
                metrics.bytes_to_allocator += wire_bytes(FLOWLET_END_BYTES)
        if finished:
            self.allocator.apply_churn(ends=finished)

    def _sample(self, result, metrics, tick_index):
        rates = np.asarray(result.rate_vector)
        load = self.allocator.link_load(rates)
        # Over-allocation is measured against the scheduler's effective
        # capacities — what it believes it may use (the full allocator
        # reports its headroom-adjusted links, ECMP the physical ones).
        excess = np.maximum(load - self.allocator.links.capacity, 0.0)
        metrics.times.append(self._now)
        metrics.n_active.append(len(self._active))
        metrics.over_allocation.append(float(excess.sum()))
        metrics.total_rate.append(float(rates.sum()))
        if self.optimal_every and tick_index % self.optimal_every == 0 \
                and self.allocator.n_flows > 0:
            table = self.allocator.table
            optimal_rates, _ = solve_to_optimal(table.clone(),
                                                self.allocator.optimizer.utility,
                                                tol=1e-6,
                                                max_iterations=3000)
            metrics.optimal_times.append(self._now)
            metrics.optimal_rate.append(float(np.sum(optimal_rates)))
            metrics.achieved_at_optimal.append(float(rates.sum()))
