"""Flowlet-level (fluid) simulation of the Flowtune allocator."""

from .churn import FluidFlowRecord, FluidMetrics, FluidSimulator
from .experiments import (OVERALLOCATION_ALGORITHMS, build_fluid_setup,
                          measure_update_traffic, network_size_sweep,
                          normalization_throughput,
                          over_allocation_by_algorithm, threshold_reduction)

__all__ = ["FluidSimulator", "FluidMetrics", "FluidFlowRecord",
           "build_fluid_setup", "measure_update_traffic",
           "threshold_reduction", "network_size_sweep",
           "over_allocation_by_algorithm", "normalization_throughput",
           "OVERALLOCATION_ALGORITHMS"]
