"""Legacy setup shim: this environment has no `wheel` package, so the
PEP 660 editable-install path (which shells out to bdist_wheel) is
unavailable; `setup.py develop` works with plain setuptools."""

from setuptools import setup

setup()
