#!/usr/bin/env python3
"""§2's fault-tolerance story: allocator dies, TCP takes over.

"In Flowtune, the allocated rates have a temporary lifespan... If the
allocator fails, the rates expire and endpoint congestion control
(e.g., TCP) takes over, using the previously allocated rates as a
starting point."

This example runs two competing Flowtune flows, kills the allocator
mid-run, and shows the endpoints detect the stale rates, fall back to
windowed TCP seeded from their last allocation, and still finish.

Run:  python examples/allocator_failover.py
"""

from repro.sim import MSS_BYTES
from repro.sim.experiments import build_network
from repro.topology import TwoTierClos


def main():
    topology = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
    network = build_network("flowtune", topology=topology,
                            rate_expiry=300e-6)
    flows = [network.make_flow(f"f{i}", 1 + i, 0, 2500 * MSS_BYTES)
             for i in range(2)]
    senders = [network.start_flow(flow) for flow in flows]

    network.run_until(1e-3)
    print("t=1.0 ms  (allocator healthy)")
    for sender in senders:
        print(f"  {sender.flow.flow_id}: mode={sender.mode} "
              f"rate={sender.rate_bps / 1e9:.2f} Gbit/s")

    # Allocator failure: its periodic tick stops cold.  No replication,
    # no failover protocol — exactly the paper's design point.
    network.allocator_device._tick = lambda: None
    print("\n*** allocator crashed ***\n")

    network.run_until(2.5e-3)
    print("t=2.5 ms  (rates expired)")
    for sender in senders:
        mode = sender.mode if not sender.done else "done"
        print(f"  {sender.flow.flow_id}: mode={mode} "
              f"cwnd={sender.cwnd:.1f} pkts")

    network.run_until(40e-3)
    print("\nfinal:")
    for flow in flows:
        status = (f"completed in {flow.fct * 1e3:.2f} ms"
                  if flow.finish_time is not None else "did not complete")
        print(f"  {flow.flow_id}: {status}")
    print("\nno replication needed: endpoints degraded to TCP and "
          "finished anyway (§2).")


if __name__ == "__main__":
    main()
