#!/usr/bin/env python3
"""§5/§6.1: the FlowBlock/LinkBlock multicore allocator, demonstrated.

Runs the same flow population through 2x2, 4x4 and 8x8 simulated
processor grids, verifies the parallel result is bit-identical to
single-core NED, and prints the fig. 3 communication structure plus
the calibrated §6.1 cycle model.

Run:  python examples/multicore_scaling.py
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.parallel import (PAPER_TABLE, MulticoreNedEngine, fit_cost_model)
from repro.topology import TwoTierClos


def main():
    rows = []
    for n_blocks in (2, 4, 8):
        topology = TwoTierClos(n_racks=n_blocks * 2, hosts_per_rack=8,
                               n_spines=4)
        engine = MulticoreNedEngine(topology, n_blocks)
        rng = np.random.default_rng(1)
        for i in range(6 * topology.n_hosts):
            src = int(rng.integers(topology.n_hosts))
            dst = int(rng.integers(topology.n_hosts - 1))
            if dst >= src:
                dst += 1
            engine.add_flow(i, src, dst)
        reference = engine.reference_optimizer()
        start = time.perf_counter()
        stats = engine.iterate(10)
        elapsed = (time.perf_counter() - start) / 10
        reference.iterate(10)
        expected = dict(zip(reference.table.flow_ids(),
                            reference.rate_update()))
        worst = max(abs(rate - expected[fid])
                    for fid, rate in engine.rates().items())
        rows.append([f"{n_blocks}x{n_blocks}", engine.n_flows,
                     stats.aggregation_steps, stats.messages // 10,
                     f"{elapsed * 1e3:.2f} ms", f"{worst:.1e}"])
    print(format_table(
        ["grid", "flows", "agg steps", "msgs/iter", "wall/iter",
         "max |Δrate| vs 1-core"],
        rows, title="simulated multicore NED (fig. 2/3 partitioning)"))

    model, configs, predictions = fit_cost_model()
    rows = [[row.cores, row.nodes, row.flows, f"{row.time_us:.2f}",
             f"{model.time_us(config):.2f}"]
            for row, config in zip(PAPER_TABLE, configs)]
    print()
    print(format_table(
        ["cores", "nodes", "flows", "paper us", "model us"],
        rows, title="§6.1 table via the calibrated cycle model"))


if __name__ == "__main__":
    main()
