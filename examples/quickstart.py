#!/usr/bin/env python3
"""Quickstart: allocate rates for flowlets on a two-tier Clos.

Builds the paper's evaluation fabric (9 racks x 16 servers, 4 spines),
starts a handful of flowlets, lets NED converge, and shows how F-NORM
keeps the allocation feasible while the notification threshold decides
which endpoints hear about their rates.

Run:  python examples/quickstart.py
"""

from repro import FlowtuneAllocator, paper_topology


def main():
    topology = paper_topology()
    print(f"fabric: {topology.n_hosts} hosts, {topology.n_links} links, "
          f"{topology.n_spines} spines")

    allocator = FlowtuneAllocator(topology.link_set(),
                                  update_threshold=0.01, gamma=0.4)

    # Three flowlets: two sharing a destination, one cross-rack.
    flows = {
        "web-reply": (0, 1),      # same rack
        "cache-fill": (5, 1),     # same rack, same destination
        "shuffle": (0, 140),      # cross-fabric
    }
    for name, (src, dst) in flows.items():
        allocator.flowlet_start(name, topology.route(src, dst, name))
        print(f"flowlet start: {name} {src}->{dst}")

    result = allocator.iterate(50)  # 50 x 10 us of allocator time
    print("\nallocated rates (Gbit/s):")
    for name, rate in sorted(result.rates.items()):
        print(f"  {name:11s} {rate:6.2f}")

    # This is the classic proportional-fairness "triangle": web-reply
    # crosses TWO contended links (h0's uplink, shared with shuffle,
    # and h1's downlink, shared with cache-fill), so the log-utility
    # optimum gives it c/3 and the single-bottleneck flows 2c/3.
    print(f"\nnotifications sent this round: {len(result.updates)}")

    allocator.flowlet_end("cache-fill")
    result = allocator.iterate(10)
    print("\nafter cache-fill ends:")
    for name, rate in sorted(result.rates.items()):
        print(f"  {name:11s} {rate:6.2f}")
    print("(web-reply reclaims the downlink within a few iterations)")


if __name__ == "__main__":
    main()
