#!/usr/bin/env python3
"""Beyond proportional fairness: custom utilities and flow weights.

§3: "the method supports any objective where flow utility is a
function of the flow's allocated rate, and different flows can have
different utility functions."  This example allocates one bottleneck
three ways: log utility (proportional fair), weighted log utility
(a paying tenant gets 3x weight), and alpha-fair with alpha=2
(minimum potential delay).

Run:  python examples/custom_utility.py
"""

from repro.core import (AlphaFairUtility, FlowTable, FlowtuneAllocator,
                        LinkSet, LogUtility, NedOptimizer)


def allocate(utility, weights):
    links = LinkSet([10.0])
    allocator = FlowtuneAllocator(links, utility=utility,
                                  update_threshold=0.0, gamma=0.5)
    for name, weight in weights.items():
        allocator.flowlet_start(name, [0], weight=weight)
    return allocator.iterate(400).rates


def main():
    flows = {"batch": 1.0, "interactive": 1.0, "tenant-gold": 1.0}

    print("proportional fairness (U = log x):")
    for name, rate in allocate(LogUtility(), flows).items():
        print(f"  {name:12s} {rate:5.2f} Gbit/s")

    print("\nweighted proportional fairness (tenant-gold weight 3):")
    weighted = dict(flows, **{"tenant-gold": 3.0})
    for name, rate in allocate(LogUtility(), weighted).items():
        print(f"  {name:12s} {rate:5.2f} Gbit/s")

    print("\nalpha-fair, alpha = 2 (minimum potential delay):")
    for name, rate in allocate(AlphaFairUtility(2.0), flows).items():
        print(f"  {name:12s} {rate:5.2f} Gbit/s")

    # The exact NED machinery is reusable standalone, too:
    table = FlowTable(LinkSet([10.0, 4.0]))
    table.add_flow("wan-transfer", [0, 1])
    table.add_flow("lan-flow", [0])
    rates = NedOptimizer(table, gamma=1.0).iterate(300)
    print("\ntandem bottleneck (10G then 4G):")
    for flow_id, rate in zip(table.flow_ids(), rates):
        print(f"  {flow_id:12s} {rate:5.2f} Gbit/s")


if __name__ == "__main__":
    main()
