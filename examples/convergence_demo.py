#!/usr/bin/env python3
"""Fig. 4 in miniature: watch schemes converge (or not) under churn.

Three senders to one receiver join 3 ms apart on a packet-level
simulation; per-flow throughput is sampled in 100 µs windows and drawn
as ASCII sparklines.  Flowtune snaps to the fair share at each event;
DCTCP wanders; pFabric starves the latecomers.

Run:  python examples/convergence_demo.py  [scheme ...]
"""

import sys

from repro.sim.experiments import convergence_experiment
from repro.topology import TwoTierClos

BLOCKS = " .:-=+*#%@"


def sparkline(values, peak):
    chars = []
    for value in values:
        level = min(int(value / peak * (len(BLOCKS) - 1)), len(BLOCKS) - 1)
        chars.append(BLOCKS[level])
    return "".join(chars)


def main():
    schemes = sys.argv[1:] or ["flowtune", "dctcp", "pfabric"]
    topology = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
    for scheme in schemes:
        network, flow_ids = convergence_experiment(
            scheme, n_senders=3, join_interval=3e-3,
            topology=topology, flow_gbits=0.5)
        t_end = network.sim.now
        print(f"\n=== {scheme} ===  (3 ms per phase; 10 Gbit/s receiver)")
        for flow_id in flow_ids:
            times, gbps = network.stats.throughput_series(flow_id, t_end)
            # Downsample to one char per 300 us for an 80-col terminal.
            step = max(1, len(gbps) // 60)
            samples = gbps[::step]
            print(f"  {flow_id}: {sparkline(samples, 10.0)}")
        print("  (each column ~300 us; height = share of 10 Gbit/s)")


if __name__ == "__main__":
    main()
