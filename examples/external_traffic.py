#!/usr/bin/env python3
"""§7's external-traffic problem: gateways, Internet flows, closed loop.

"Most datacenters do not run in isolation ... A Flowtune cluster must
be able to accept flows that are not scheduled by the allocator."

This example runs scheduled flowlets while an unscheduled 4 Gbit/s
Internet ingress hits one server's downlink.  First the open loop (an
operator pins the known external share), then the closed loop: the
endpoint *measures* the external throughput and feeds observations
back; the allocator's capacity view converges onto the measurement and
scheduled flows adapt.

Run:  python examples/external_traffic.py
"""

from repro.core import ExternalTrafficManager, FlowtuneAllocator
from repro.topology import TwoTierClos


def print_rates(label, rates):
    print(f"{label}:")
    for name, rate in sorted(rates.items()):
        print(f"  {name:10s} {rate:5.2f} Gbit/s")


def main():
    topology = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
    allocator = FlowtuneAllocator(topology.link_set(),
                                  update_threshold=0.0, gamma=0.5)
    manager = ExternalTrafficManager(allocator, smoothing=0.5)

    # Two scheduled flowlets sharing host 0's downlink.
    for name, src in (("rpc-a", 1), ("rpc-b", 5)):
        allocator.flowlet_start(name, topology.route(src, 0, name))
    print_rates("\nno external traffic", allocator.iterate(300).rates)

    # Open loop: we *know* the gateway pushes 4 Gbit/s to host 0.
    down = topology.host_down_link(0)
    manager.set_external(down, 4.0)
    print_rates("\nopen loop: 4 Gbit/s pinned on h0's downlink",
                allocator.iterate(300).rates)

    # Closed loop: forget the configuration; learn from measurements.
    manager.clear()
    allocator.iterate(100)
    print("\nclosed loop: endpoint reports ~4 Gbit/s of unscheduled "
          "ingress, EWMA-smoothed")
    for step in range(6):
        manager.observe(down, 4.0)
        rates = allocator.iterate(150).rates
        believed = manager.external[down]
        print(f"  after observation {step + 1}: allocator believes "
              f"{believed:4.2f} Gbit/s external; rpc-a gets "
              f"{rates['rpc-a']:4.2f}")

    print("\nscheduled flows end up at the same split as the open loop —")
    print("the §7 'closed loop' via capacity adjustment, no dummy flows.")


if __name__ == "__main__":
    main()
