#!/usr/bin/env python3
"""Two-process allocator service demo — including a mid-trace kill.

Spawns ``python -m repro.service`` as a child process, drives it over
the wire with :class:`FlowtuneClient`, and checks the remote rates
against an in-process :class:`FlowtuneAllocator` fed the identical
churn trace.  In ``manual`` mode the service only iterates on
``step()``, so both sides execute the same NED iterations in the same
order and the rates agree bitwise — the wire adds latency, never
drift.

Halfway through the trace the client's socket is hard-killed (no BYE)
to simulate an unreliable endpoint.  The server keeps the session's
flows alive in the resume grace window; ``reconnect()`` presents the
RESUME credentials and replays the client's un-acked churn journal,
after which the trace continues — and still matches the in-process
allocator with **0.0** max delta, because the replay lands exactly
the churn the reference saw, in the same batches.

Run:  python examples/allocator_service.py
"""

import numpy as np

from repro import FlowtuneAllocator, TwoTierClos, spawn_service
from repro.service import FlowtuneClient


def churn_trace(topology, rng, n_flows=40, n_phases=5):
    """Yield (starts, ends) batches: arrivals early, departures late."""
    routes = {}
    next_id = 0
    for phase in range(n_phases):
        starts = []
        for _ in range(n_flows // n_phases):
            src, dst = rng.choice(topology.n_hosts, size=2, replace=False)
            route = topology.route(int(src), int(dst), next_id)
            routes[next_id] = route
            starts.append((next_id, route, 1.0))
            next_id += 1
        ends = []
        if phase >= 2:  # start retiring the oldest flows mid-trace
            oldest = sorted(fid for fid in routes)[: n_flows // n_phases // 2]
            for fid in oldest:
                del routes[fid]
                ends.append(fid)
        yield starts, ends


def main():
    topology = TwoTierClos(n_racks=3, hosts_per_rack=8, n_spines=2)
    gamma = 0.4
    kill_before_phase = 2   # hard-kill the socket entering this phase

    # In-process reference: the classic library API.
    reference = FlowtuneAllocator(topology.link_set(), gamma=gamma)

    # Service: same topology, manual mode so iterations are
    # client-driven and therefore reproducible.  A generous grace
    # window keeps the killed client's flows alive until it resumes.
    with spawn_service(racks=3, hosts_per_rack=8, spines=2,
                       mode="manual", gamma=gamma,
                       resume_grace=30.0) as handle:
        print(f"service up at {handle.address[0]}:{handle.address[1]} "
              f"(pid {handle.process.pid})")
        with FlowtuneClient(handle.address, handle.token_hex) as client:
            worst = 0.0
            rng = np.random.default_rng(7)
            for phase, (starts, ends) in enumerate(churn_trace(topology,
                                                               rng)):
                if phase == kill_before_phase:
                    # The unreliable moment: the socket dies without
                    # BYE, then the session is resumed and the un-acked
                    # journal replayed on a fresh connection.
                    client.kill()
                    client.reconnect()
                    print(f"  -- killed + resumed (session "
                          f"{client.client_id}, replayed journal, "
                          f"reconnects={client.reconnects})")

                # Same batch down both paths.
                client.apply_churn(starts=starts, ends=ends)
                reference.apply_churn(
                    starts=[(fid, route) for fid, route, _ in starts],
                    ends=ends)

                remote = client.step(10)
                local = reference.iterate(10).rates

                assert remote.keys() == local.keys()
                delta = max((abs(remote[f] - local[f]) for f in remote),
                            default=0.0)
                worst = max(worst, delta)
                print(f"  {len(starts):2d} starts {len(ends):2d} ends -> "
                      f"{len(remote):3d} flows, max |remote-local| = "
                      f"{delta:.3e}")
            client.shutdown_service()

        exit_code = handle.process.wait(timeout=10.0)

    print(f"\nservice exited with code {exit_code}")
    print(f"worst divergence across the restart-bearing trace: {worst:.3e}")
    assert worst == 0.0, "remote allocator drifted from in-process result"
    print("kill/reconnect/replay trace matches the in-process allocator "
          "bit-for-bit (0.0 max delta)")


if __name__ == "__main__":
    main()
