#!/usr/bin/env python3
"""Tail flow-completion times on a Facebook-style workload (fig. 8).

Replays the same Poisson flowlet arrivals (web workload, load 0.6)
under Flowtune and DCTCP on the packet simulator, then prints p99
normalized FCT per flow-size bin and the Flowtune speedup — the unit
of measure in the paper's headline results.

Run:  python examples/datacenter_fct.py
"""

from repro.analysis import (format_table, normalized_fcts, p99_by_bin,
                            speedup_by_bin)
from repro.analysis.fct import SIZE_BINS
from repro.sim.experiments import fct_experiment
from repro.topology import TwoTierClos


def main():
    topology = TwoTierClos(n_racks=3, hosts_per_rack=8, n_spines=2)
    runs = {}
    for scheme in ("flowtune", "dctcp"):
        print(f"simulating {scheme} ...")
        net, stats, _ = fct_experiment(
            scheme, workload="web", load=0.6, duration=4e-3, drain=8e-3,
            seed=42, topology=topology)
        runs[scheme] = normalized_fcts(stats, net.topology)
        done = stats.completion_fraction()
        print(f"  {len(stats.flows)} flowlets, {done:.1%} completed")

    labels = [label for label, _, _ in SIZE_BINS]
    p99 = {scheme: p99_by_bin(norm) for scheme, norm in runs.items()}
    speedup = speedup_by_bin(runs["dctcp"], runs["flowtune"])
    rows = [[label,
             f"{p99['flowtune'].get(label, float('nan')):.1f}",
             f"{p99['dctcp'].get(label, float('nan')):.1f}",
             f"{speedup.get(label, float('nan')):.1f}x"]
            for label in labels]
    print()
    print(format_table(
        ["flow size", "Flowtune p99", "DCTCP p99", "speedup"],
        rows, title="p99 FCT, normalized to empty-network time"))
    print("\npaper (fig. 8): 8.6-10.9x on 1-packet flows, "
          "2.1-2.9x on 1-10 packets")


if __name__ == "__main__":
    main()
