"""Ablation: the §7 three-tier open question, quantified.

§7: "Assigning a full pod to one block would create huge blocks,
limiting allocator parallelism.  On the other hand, the links going
into and out of a pod are used by all servers in a pod, so splitting a
pod to multiple blocks creates expensive updates."

This bench (a) verifies NED allocates correctly on a three-tier fabric
(the NUM core is topology-agnostic), and (b) measures the pod-block
coupling fraction — the share of a pod-block's LinkBlock state that
cross-pod FlowBlocks would contend on — across fabric shapes, making
the §7 trade-off concrete.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import FlowTable, NedOptimizer
from repro.topology import ThreeTierClos

from _common import report


def test_ned_on_three_tier(benchmark):
    topology = ThreeTierClos(n_pods=4, racks_per_pod=2, hosts_per_rack=8,
                             n_spines=2, n_core=4)
    table = FlowTable(topology.link_set())
    rng = np.random.default_rng(3)
    for i in range(300):
        src = int(rng.integers(topology.n_hosts))
        dst = int(rng.integers(topology.n_hosts - 1))
        if dst >= src:
            dst += 1
        table.add_flow(i, topology.route(src, dst, i))
    optimizer = NedOptimizer(table, gamma=0.4)

    def run():
        return optimizer.iterate(50)

    rates = benchmark(run)
    load = table.link_totals(rates)
    over = np.maximum(load - table.links.capacity, 0.0)
    total = float(load.sum())
    report(f"\n[§7 ablation] NED on 3-tier ({topology.n_hosts} hosts, "
           f"{topology.n_links} links): residual over-allocation "
           f"= {over.sum():.3f} of {total:.0f} Gbit/s allocated")
    assert over.sum() < 0.01 * total


def test_pod_block_coupling(benchmark):
    shapes = [
        ("2 pods, 4 racks", dict(n_pods=2, racks_per_pod=4,
                                 hosts_per_rack=16, n_spines=4, n_core=4)),
        ("4 pods, 4 racks", dict(n_pods=4, racks_per_pod=4,
                                 hosts_per_rack=16, n_spines=4, n_core=8)),
        ("8 pods, 8 racks", dict(n_pods=8, racks_per_pod=8,
                                 hosts_per_rack=16, n_spines=4, n_core=16)),
    ]

    def run():
        return [(name, ThreeTierClos(**kw).pod_block_coupling())
                for name, kw in shapes]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["fabric", "pod-block coupling"],
        [[name, f"{frac:.3f}"] for name, frac in rows],
        title="\n[§7 ablation] fraction of a pod block's upward links "
              "shared across pods (higher = costlier to split pods)"))
    assert all(0 < frac < 0.5 for _, frac in rows)