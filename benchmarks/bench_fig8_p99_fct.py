"""Fig. 8 / §6.5 (F): p99 FCT speedup of Flowtune, by flow-size bin.

Paper headline ratios (web workload):
* vs DCTCP: 8.6-10.9x on 1-packet flows, 2.1-2.9x on 1-10 packets;
* vs pFabric: 1.7-2.4x on 1-packet flows, pFabric comparable/winning
  on 1-100 packets (it is built to prioritize them);
* vs sfqCoDel: 3.5-3.8x on 10-100 packets at high load;
* vs XCP: 2.35x on 1-packet, 1.2-4.1x elsewhere.

Every scheme replays the *same* Poisson arrival sequence, so ratios
compare identical traffic.
"""

import pytest

from repro.analysis import format_table, normalized_fcts, speedup_by_bin
from repro.analysis.fct import SIZE_BINS

from _common import SCALE, FCT_SCHEMES, fct_run, report

BASELINES = tuple(s for s in FCT_SCHEMES if s != "flowtune")


@pytest.mark.parametrize("load", [SCALE.loads[0], SCALE.loads[-1]])
def test_p99_fct_speedups(benchmark, load):
    def run():
        reference_net, reference_stats, _ = fct_run("flowtune", load)
        flowtune_norm = normalized_fcts(reference_stats,
                                        reference_net.topology)
        table = {}
        for scheme in BASELINES:
            net, stats, _ = fct_run(scheme, load)
            table[scheme] = speedup_by_bin(
                normalized_fcts(stats, net.topology), flowtune_norm)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = [label for label, _, _ in SIZE_BINS]
    rows = [[scheme] + [f"{table[scheme].get(label, float('nan')):.2f}"
                        for label in labels]
            for scheme in BASELINES]
    report(format_table(
        ["scheme \\ bin"] + labels, rows,
        title=f"\n[fig 8] p99 FCT speedup of Flowtune, load={load} "
              "(>1 means Flowtune faster)"))

    # Shape assertions (the paper's direction, generous tolerances).
    # DCTCP loses badly on short flows at every load; the
    # pFabric/Flowtune split and the XCP gap only emerge at high load.
    assert table["dctcp"].get("1 packet", 0) > 1.5
    if load >= 0.6:
        if "10-100 packets" in table["pfabric"]:
            assert table["pfabric"]["10-100 packets"] > 0.8
        assert table["xcp"].get("1-10 packets", 0) > 0.8
