"""Ablation: rate-update distribution designs (§7).

"Sending tiny rate updates of a few bytes has huge overhead ...  When
sending an 8-byte rate update there is a 10x overhead.  A
straightforward solution to scale the allocator 10x would be to employ
a group of intermediary servers ... scaling up to a few thousand
endpoints."  This bench reproduces that arithmetic at the measured
§6.4 update rates.
"""

import pytest

from repro.analysis import format_table
from repro.control import direct_update_plane, intermediary_update_plane

from _common import report

#: §6.4: per-server update overhead 1.12 % of a 10 G NIC.
PAPER_OVERHEAD = 0.0112
UPDATE_RATE = PAPER_OVERHEAD * 10e9 / 8.0 / 84.0  # updates/s/server


def test_update_plane_scaling(benchmark):
    def run():
        direct = direct_update_plane(UPDATE_RATE, nic_gbps=10.0)
        relayed = intermediary_update_plane(UPDATE_RATE, nic_gbps=10.0)
        return direct, relayed

    direct, relayed = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["design", "endpoints/NIC", "intermediaries", "alloc B/s/endpoint"],
        [["direct (84 B frames)", direct.endpoints_per_nic, 0,
          f"{direct.allocator_bytes_per_endpoint:.0f}"],
         ["MTU via intermediaries", relayed.endpoints_per_nic,
          relayed.intermediaries,
          f"{relayed.allocator_bytes_per_endpoint:.0f}"]],
        title="\n[§7 ablation] rate-update plane scaling "
              "(paper: 89 servers direct, ~10x via intermediaries)"))
    assert direct.endpoints_per_nic == pytest.approx(89, abs=3)
    assert 8.0 <= relayed.scaling_vs(direct) <= 20.0