"""Fig. 11 / §6.5: proportional-fairness score relative to Flowtune.

Paper: on average a flow scores 1.0-1.9 log2-points less under DCTCP
than under Flowtune, 0.45-0.83 less under pFabric, ~1.3 less under
XCP and ~0.25 less under sfqCoDel — i.e. every compared scheme
allocates farther from the proportional-fair optimum.
"""


from repro.analysis import flow_rates, format_table, relative_fairness

from _common import SCALE, FCT_SCHEMES, fct_run, report

PAPER_GAPS = {"dctcp": (-1.9, -1.0), "pfabric": (-0.83, -0.45),
              "xcp": (-1.3, -1.3), "sfqcodel": (-0.25, -0.25)}


def test_relative_fairness(benchmark):
    loads = [SCALE.loads[0], SCALE.loads[-1]]

    def run():
        table = {}
        for load in loads:
            _, stats_ft, _ = fct_run("flowtune", load)
            reference = flow_rates(stats_ft)
            for scheme in FCT_SCHEMES:
                if scheme == "flowtune":
                    continue
                _, stats, _ = fct_run(scheme, load)
                table[(scheme, load)] = relative_fairness(
                    flow_rates(stats), reference)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[scheme, f"{load:.1f}", f"{gap:+.2f}",
             f"{PAPER_GAPS[scheme][0]:+.2f}..{PAPER_GAPS[scheme][1]:+.2f}"]
            for (scheme, load), gap in table.items()]
    report(format_table(
        ["scheme", "load", "mean log2 gap", "paper"],
        rows, title="\n[fig 11] per-flow fairness relative to Flowtune "
                    "(negative = less fair)"))

    heavy = loads[-1]
    # Robust shape subset (see EXPERIMENTS.md for the deviations): the
    # window-law schemes allocate clearly less fairly at high load.
    # Our pFabric implementation recovers better from drops than ns2's
    # and scores *fairer* on churny mice-dominated traffic, so it is
    # reported but not asserted.
    assert table[("dctcp", heavy)] < -0.2
    assert table[("xcp", heavy)] < 0.0
    assert table[("sfqcodel", heavy)] < 0.15
