"""Fig. 6 / §6.4 (D): update-traffic reduction vs notification threshold.

Paper: thresholds of 0.05 cut update traffic by up to 69 % (Hadoop),
64 % (cache) and 33 % (web) relative to the 0.01 baseline.
"""

import pytest

from repro.analysis import format_table
from repro.fluid import threshold_reduction

from _common import SCALE, report

PAPER_MAX_REDUCTION = {"hadoop": 69.0, "cache": 64.0, "web": 33.0}
THRESHOLDS = (0.01, 0.02, 0.03, 0.04, 0.05)


@pytest.mark.parametrize("workload", ["hadoop", "cache", "web"])
def test_threshold_reduction(benchmark, workload):
    reductions = benchmark.pedantic(
        threshold_reduction, rounds=1, iterations=1,
        kwargs=dict(workload=workload, load=0.6, thresholds=THRESHOLDS,
                    duration=SCALE.fluid_duration,
                    warmup=SCALE.fluid_warmup, seed=5,
                    n_racks=SCALE.n_racks,
                    hosts_per_rack=SCALE.hosts_per_rack,
                    n_spines=SCALE.n_spines))
    report(format_table(
        ["threshold", "% reduction vs 0.01"],
        [[f"{t:.2f}", f"{reductions[t]:.1f}"] for t in THRESHOLDS],
        title=f"\n[fig 6] update-traffic reduction, workload={workload} "
              f"(paper @0.05: {PAPER_MAX_REDUCTION[workload]:.0f}%)"))
    # Shape: monotone-ish reduction, strictly positive at 0.05.
    assert reductions[0.05] > 5.0
    assert reductions[0.05] >= reductions[0.02] - 5.0
