"""Ablation: F-NORM scale-up vs scale-down-only in the online setting.

Equation 9 divides every flow by its path's worst ratio, which *scales
up* under-allocated flows.  In the closed loop that is what fig. 13's
near-optimal throughput relies on; in the *online* packet network it
double-books links for the ~2 ticks rate reductions take to reach
other endpoints.  This bench quantifies the trade on the fluid model:
scale-up buys throughput, scale-down-only buys lower over-allocation
against full capacities — the reason the packet-level allocator node
runs scale-down-only (see `repro.control.allocator_node`).
"""

import numpy as np

from repro.analysis import format_table
from repro.core.normalization import FNormalizer
from repro.fluid import build_fluid_setup

from _common import SCALE, report


def test_scale_up_tradeoff(benchmark):
    def run():
        results = {}
        for allow, label in ((True, "scale-up (Eq. 9)"),
                             (False, "scale-down only")):
            _, allocator, _, simulator = build_fluid_setup(
                workload="web", load=0.7,
                normalizer=FNormalizer(allow_scale_up=allow),
                threshold=0.0, seed=41, n_racks=SCALE.n_racks,
                hosts_per_rack=SCALE.hosts_per_rack,
                n_spines=SCALE.n_spines)
            metrics = simulator.run(SCALE.fluid_duration,
                                    warmup=SCALE.fluid_warmup)
            results[label] = (float(np.mean(metrics.total_rate)),
                              metrics.peak_over_allocation())
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["F-NORM variant", "mean throughput (Gbit/s)",
         "peak over-alloc (Gbit/s)"],
        [[label, f"{rate:.1f}", f"{over:.2f}"]
         for label, (rate, over) in results.items()],
        title="\n[ablation] F-NORM scale-up vs scale-down-only, load 0.7"))
    up = results["scale-up (Eq. 9)"]
    down = results["scale-down only"]
    assert up[0] >= down[0] - 1e-6       # scale-up never loses throughput
    assert down[1] <= up[1] + 1e-6       # scale-down never over-allocates more