"""Fig. 13 / §6.6 (J): U-NORM vs F-NORM throughput vs the optimum.

Paper: F-NORM achieves over 99.7 % of optimal throughput with NED
(98.4 % with Gradient); U-NORM scales flows down too aggressively and
is not competitive.  After each allocator iteration a fresh NED solve
to convergence provides the "optimal" reference — the same methodology
as the paper.
"""


from repro.analysis import format_table
from repro.fluid import normalization_throughput

from _common import SCALE, report

PAPER = {("NED", "F-NORM"): 0.997, ("Gradient", "F-NORM"): 0.984}


def test_normalization_throughput(benchmark):
    load = SCALE.loads[-2] if len(SCALE.loads) > 1 else SCALE.loads[0]
    results = benchmark.pedantic(
        normalization_throughput, rounds=1, iterations=1,
        kwargs=dict(load=load, workload="web",
                    duration=SCALE.fluid_duration,
                    warmup=SCALE.fluid_warmup, seed=23,
                    optimal_every=25, n_racks=SCALE.n_racks,
                    hosts_per_rack=SCALE.hosts_per_rack,
                    n_spines=SCALE.n_spines))
    rows = [[algo, norm, f"{fraction:.3f}",
             f"{PAPER.get((algo, norm), float('nan')):.3f}"]
            for (algo, norm), fraction in sorted(results.items())]
    report(format_table(
        ["algorithm", "normalizer", "fraction of optimal", "paper"],
        rows, title=f"\n[fig 13] throughput vs optimal, load={load}"))

    # Shape: F-NORM is near-optimal and clearly beats U-NORM for both
    # algorithms; U-NORM is "not competitive".
    assert results[("NED", "F-NORM")] > 0.8
    assert results[("NED", "F-NORM")] > results[("NED", "U-NORM")] + 0.1
    assert results[("Gradient", "F-NORM")] > \
        results[("Gradient", "U-NORM")] + 0.1
