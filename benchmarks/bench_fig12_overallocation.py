"""Fig. 12 / §6.6 (I): over-allocation without normalization.

Paper: without normalization the optimizers momentarily allocate more
than link capacities under flowlet churn — NED over-allocates more
than Gradient (it reprices more aggressively on churn), the RT
variants differ from their references, and FGM handles the update
stream worst.
"""


from repro.analysis import format_table
from repro.fluid import over_allocation_by_algorithm

from _common import SCALE, report

ALGORITHMS = ("NED", "NED-RT", "Gradient", "Gradient-RT", "FGM")


def test_over_allocation(benchmark):
    loads = SCALE.loads

    def run():
        table = {}
        for load in loads:
            table[load] = over_allocation_by_algorithm(
                load=load, workload="web",
                duration=SCALE.fluid_duration, warmup=SCALE.fluid_warmup,
                seed=21, n_racks=SCALE.n_racks,
                hosts_per_rack=SCALE.hosts_per_rack,
                n_spines=SCALE.n_spines)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{load:.2f}"] + [f"{table[load][a]:.1f}" for a in ALGORITHMS]
            for load in loads]
    report(format_table(
        ["load"] + list(ALGORITHMS), rows,
        title="\n[fig 12] mean over-capacity allocation (Gbit/s), "
              "no normalization (paper: up to ~140 Gbit/s @ 144 hosts)"))

    heavy = loads[-1]
    # Shape: over-allocation grows with load and is nonzero for every
    # algorithm; NED's aggressive repricing over-allocates at least as
    # much as Gradient's timid steps.
    assert table[heavy]["NED"] > table[loads[0]]["NED"] * 0.8
    assert all(table[heavy][a] > 0 for a in ALGORITHMS)
    assert table[heavy]["NED"] > 0.5 * table[heavy]["Gradient"]
