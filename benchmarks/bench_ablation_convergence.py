"""Ablation: iterations-to-converge, NED vs the §3/§8 alternatives.

The paper's core claim is that computing the exact Hessian diagonal
buys convergence "within a few packets rather than over several RTTs".
This bench counts optimizer iterations until all rates are within 1 %
of the proportional-fair optimum, from a cold start and after churn
(warm start), for NED, Gradient projection, the Newton-like method and
FGM on the same fabric.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (FgmOptimizer, FlowTable, GradientOptimizer,
                        NedOptimizer, NewtonLikeOptimizer,
                        solve_to_optimal)
from repro.topology import TwoTierClos

from _common import report

ALGORITHMS = {
    # gamma = 0.4 is the paper's §6.2 value; gamma = 1 can limit-cycle
    # within ~1 % of the optimum on tightly coupled topologies (the
    # same damping need solve_to_optimal handles adaptively).
    "NED": (NedOptimizer, {"gamma": 0.4}),
    "Newton-like": (NewtonLikeOptimizer, {"gamma": 0.4}),
    "Gradient": (GradientOptimizer, {"gamma": 0.01}),
    "FGM": (FgmOptimizer, {}),
}
MAX_ITERATIONS = 20_000


def build_table(seed=0, n_flows=150):
    topology = TwoTierClos(n_racks=4, hosts_per_rack=8, n_spines=2)
    table = FlowTable(topology.link_set())
    rng = np.random.default_rng(seed)
    for i in range(n_flows):
        src = int(rng.integers(topology.n_hosts))
        dst = int(rng.integers(topology.n_hosts - 1))
        if dst >= src:
            dst += 1
        table.add_flow(i, topology.route(src, dst, i))
    return table


def iterations_to_converge(optimizer, target, rtol=0.02):
    for iteration in range(1, MAX_ITERATIONS + 1):
        rates = optimizer.iterate(1)
        if np.allclose(rates, target, rtol=rtol):
            return iteration
    return float("inf")


def test_convergence_iterations(benchmark):
    def run():
        results = {}
        for name, (cls, kwargs) in ALGORITHMS.items():
            table = build_table()
            optimal, _ = solve_to_optimal(table.clone(), tol=1e-8)
            optimizer = cls(table, **kwargs)
            cold = iterations_to_converge(optimizer, optimal)
            # Churn: remove a tenth of the flows, reconverge warm.
            for i in range(0, 150, 10):
                table.remove_flow(i)
            optimal2, _ = solve_to_optimal(table.clone(), tol=1e-8)
            warm = iterations_to_converge(optimizer, optimal2)
            results[name] = (cold, warm)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, cold, warm] for name, (cold, warm) in results.items()]
    report(format_table(
        ["algorithm", "cold-start iters", "post-churn iters"], rows,
        title="\n[ablation] iterations to within 1% of optimum "
              "(150 flows, 32-host Clos)"))
    ned_cold, ned_warm = results["NED"]
    assert ned_cold < results["Gradient"][0]
    assert ned_warm <= 200  # "a few" iterations after churn, warm-started
