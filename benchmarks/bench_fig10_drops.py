"""Fig. 10 / §6.5 (H): dropped data per second.

Paper: sfqCoDel drops up to ~8 % of bytes (over 100 Gbit/s at load
0.8), pFabric ~6 %; Flowtune, DCTCP and XCP drop negligible amounts
(Flowtune and XCP in particular are ~zero).
"""


from repro.analysis import format_table

from _common import SCALE, FCT_SCHEMES, fct_run, report


def test_drop_rates(benchmark):
    load = SCALE.loads[-1]

    def run():
        table = {}
        for scheme in FCT_SCHEMES:
            net, stats, duration = fct_run(scheme, load)
            dropped = stats.drop_gbps(net.links, duration)
            transmitted = sum(link.tx_bytes for link in net.links)
            fraction = stats.dropped_bytes(net.links) / max(transmitted, 1)
            table[scheme] = (dropped, fraction)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["scheme", "dropped Gbit/s", "fraction of bytes"],
        [[s, f"{g:.2f}", f"{f:.2%}"] for s, (g, f) in table.items()],
        title=f"\n[fig 10] drop rates at load={load} "
              "(paper: sfqCoDel ~8%, pFabric ~6%, others ~0)"))

    # Shape: the drop-based schemes drop real volume; Flowtune and XCP
    # are near-zero.
    assert table["flowtune"][0] < 0.1
    assert table["xcp"][0] < 0.1
    assert table["sfqcodel"][0] > 5 * max(table["flowtune"][0], 0.01)
    assert table["pfabric"][0] > 5 * max(table["flowtune"][0], 0.01)
