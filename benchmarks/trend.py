#!/usr/bin/env python
"""Chart hot-path benchmark scores across CI runs.

The bench-smoke CI lane uploads every run's ``BENCH_hotpath.json`` as
a per-run-numbered artifact (``bench-hotpath-<run>-<attempt>``, 90-day
retention).  The 30 % regression gate only catches step changes; this
script makes *drift inside the band* visible by loading an artifact
series and printing each gated benchmark's normalized score (ops/sec
relative to the calibration kernel — the same figure the gate
compares) over time, as a table plus a unicode sparkline, with the
committed baseline marked.

Point it at downloaded artifacts — either the JSON files themselves or
the directories ``gh run download`` produces::

    gh run download --name 'bench-hotpath-123-1' --dir artifacts/
    python benchmarks/trend.py artifacts/

    python benchmarks/trend.py --fetch          # download via gh, then chart

Runs are ordered by the run number embedded in the artifact name
(falling back to file modification time), and only runs matching
``--mode`` (default ``quick``, what CI records) are charted.
"""

from __future__ import annotations

import argparse
import io
import json
import re
import subprocess
import sys
import zipfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(Path(__file__).resolve().parent))

import report  # noqa: E402
from harness import DEFAULT_BASELINE, relative_scores  # noqa: E402

_RUN_NUMBER = re.compile(r"bench-hotpath-(\d+)(?:-(\d+))?")
_SPARKS = "▁▂▃▄▅▆▇█"


def run_number(name):
    """(run, attempt) parsed from an artifact name, or None.

    Numeric, not lexicographic: ``bench-hotpath-105-1`` must sort
    after ``bench-hotpath-99-1``.
    """
    match = _RUN_NUMBER.search(str(name))
    if match:
        return (int(match.group(1)), int(match.group(2) or 0))
    return None


def _run_key(path: Path):
    """Sort key: (run number, attempt) from the artifact name, else
    modification time (ordered after all numbered runs)."""
    for part in (path.name, *(p.name for p in path.parents)):
        parsed = run_number(part)
        if parsed is not None:
            return (0, *parsed)
    return (1, path.stat().st_mtime, 0)


def discover(paths):
    """Expand files/directories into candidate result JSONs, ordered."""
    found = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(path.rglob("*.json"))
        elif path.suffix == ".json":
            found.append(path)
    return sorted(set(found), key=_run_key)


def load_series(paths, mode="quick"):
    """Parse result files into ``[(label, {benchmark: score})]``.

    Accepts both raw harness payloads (``{"results": ...}``) and the
    committed baseline layout; files of other modes or unreadable
    files are skipped (a trend tool should chart what it can).  Runs
    recorded under a non-default kernel tier (``environment.
    kernel_tier``) carry the tier in their label so artifacts from
    different ``REPRO_KERNEL_TIER`` lanes stay distinguishable.
    """
    series = []
    for path in paths:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if "modes" in payload:  # committed-baseline layout
            entry = payload["modes"].get(mode, {})
            results = entry.get("results")
            environment = entry.get("environment") or {}
        elif payload.get("mode") == mode:
            results = payload.get("results")
            environment = payload.get("environment") or {}
        else:
            results, environment = None, {}
        if results is None or "calibration" not in results:
            continue
        match = _RUN_NUMBER.search(str(path))
        label = f"run {match.group(1)}" if match else path.stem
        tier = environment.get("kernel_tier")
        if tier:
            label = f"{label} [{tier}]"
        series.append((label, relative_scores(results)))
    return series


def sparkline(values):
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARKS[0] * len(values)
    span = hi - lo
    return "".join(_SPARKS[min(len(_SPARKS) - 1,
                               int((v - lo) / span * len(_SPARKS)))]
                   for v in values)


def render(series, baseline_scores=None, tolerance=0.30, out=None):
    """Print the per-benchmark trend; returns benchmark names whose
    latest score sits below the gate's floor (should be none — the
    gate would have failed that run)."""
    out = out if out is not None else sys.stdout
    if not series:
        print("no matching benchmark runs found", file=out)
        return []
    names = sorted({name for _, scores in series for name in scores})
    labels = [label for label, _ in series]
    print(f"{len(series)} runs: {labels[0]} .. {labels[-1]}", file=out)
    breaching = []
    rows = []
    for name in names:
        values = [scores[name] for _, scores in series if name in scores]
        first, latest = values[0], values[-1]
        delta = 100.0 * (latest / first - 1.0) if first else float("nan")
        floor_s = None
        if baseline_scores and name in baseline_scores:
            floor = baseline_scores[name] * (1.0 - tolerance)
            floor_s = f"{floor:.4f}"
            if latest < floor:
                breaching.append(name)
        rows.append([name, f"{first:.4f}", f"{latest:.4f}",
                     f"{delta:+.1f}%", floor_s, sparkline(values)])
    print(report.format_table(
        ["benchmark", "first", "latest", "Δ%", "floor", "trend"], rows),
        file=out)
    print("(scores are ops/sec normalized by the calibration kernel; "
          "floor = committed baseline - tolerance)", file=out)
    return breaching


def baseline_for(mode, baseline_path):
    path = Path(baseline_path)
    if not path.exists():
        return None
    results = json.loads(path.read_text()).get("modes", {}) \
        .get(mode, {}).get("results")
    return relative_scores(results) if results else None


def fetch_artifacts(dest: Path, repo=None, limit=20):
    """Download recent ``bench-hotpath-*`` artifacts with the gh CLI."""
    dest.mkdir(parents=True, exist_ok=True)
    base = f"repos/{repo}" if repo else "repos/{owner}/{repo}"
    try:
        listing = subprocess.run(
            ["gh", "api", f"{base}/actions/artifacts?per_page=100"],
            check=True, capture_output=True, text=True)
    except (OSError, subprocess.CalledProcessError) as exc:
        raise SystemExit(f"gh api failed ({exc}); download artifacts "
                         "manually and pass the directory "
                         "instead") from exc
    artifacts = [a for a in json.loads(listing.stdout)["artifacts"]
                 if a["name"].startswith("bench-hotpath-")
                 and not a["expired"]]
    artifacts.sort(key=lambda a: run_number(a["name"]) or (0, 0))
    for artifact in artifacts[-limit:]:
        target = dest / artifact["name"]
        if target.exists():
            continue
        blob = subprocess.run(
            ["gh", "api", f"{base}/actions/artifacts/"
             f"{artifact['id']}/zip"],
            check=True, capture_output=True)
        with zipfile.ZipFile(io.BytesIO(blob.stdout)) as archive:
            archive.extractall(target)
    return dest


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="chart BENCH_hotpath.json scores across CI runs")
    parser.add_argument("paths", nargs="*",
                        help="result JSONs or artifact directories")
    parser.add_argument("--mode", default="quick",
                        help="harness mode to chart (default: quick, "
                             "what the CI smoke lane records)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON for the gate-floor column")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--fetch", action="store_true",
                        help="download recent artifacts via the gh CLI "
                             "into --dest first")
    parser.add_argument("--dest", type=Path,
                        default=REPO_ROOT / "bench-artifacts",
                        help="download directory for --fetch")
    parser.add_argument("--repo", default=None,
                        help="owner/name for --fetch (default: the "
                             "current gh repo)")
    parser.add_argument("--limit", type=int, default=20,
                        help="artifacts to fetch with --fetch")
    args = parser.parse_args(argv)

    paths = list(args.paths)
    if args.fetch:
        paths.append(str(fetch_artifacts(args.dest, args.repo,
                                         args.limit)))
    if not paths:
        parser.error("pass artifact files/directories or use --fetch")
    series = load_series(discover(paths), mode=args.mode)
    breaching = render(series, baseline_for(args.mode, args.baseline),
                       args.tolerance)
    return 1 if breaching else 0


if __name__ == "__main__":
    sys.exit(main())
