"""§6.1: Flowtune vs Fastpass allocator throughput per core.

Paper: Fastpass handles 2.2 Tbit/s on 8 cores (0.275/core); Flowtune
15.36 Tbit/s on 4 (3.84/core) — 10.4x more throughput per core.  Both
allocators run in the same Python substrate here, so the printed ratio
isolates the structural difference (per-packet matching vs
per-iteration flowlet pricing).
"""

from repro.analysis import format_table
from repro.fastpass import (measure_fastpass_throughput,
                            measure_flowtune_throughput)

from _common import report

PAPER_PER_CORE_RATIO = 10.4


def test_per_core_throughput_ratio(benchmark):
    def run():
        fastpass = measure_fastpass_throughput(n_hosts=128, n_pairs=1024,
                                               min_seconds=0.2)
        flowtune = measure_flowtune_throughput(n_hosts=128,
                                               flows_per_host=12,
                                               min_seconds=0.2)
        return fastpass, flowtune

    fastpass, flowtune = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = flowtune / max(fastpass, 1e-12)
    report(format_table(
        ["allocator", "Tbit/s per core (this substrate)", "paper"],
        [["Fastpass", f"{fastpass:.4f}", "0.275 (2.2 on 8 cores)"],
         ["Flowtune NED", f"{flowtune:.4f}", "3.84 (15.36 on 4 cores)"],
         ["ratio", f"{ratio:.1f}x", f"{PAPER_PER_CORE_RATIO}x"]],
        title="\n[§6.1] per-core allocator throughput"))
    # Shape: flowlet-granularity control beats per-packet by a wide
    # margin; the exact ratio depends on the substrate.
    assert ratio > 3.0
