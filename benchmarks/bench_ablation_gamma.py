"""Ablation: NED step-size sensitivity (§6.2).

"We found that for NED parameter gamma in the range [0.2, 1.5], the
network exhibits similar performance; experiments have gamma = 0.4."
This bench sweeps gamma on the fluid churn model and reports mean
over-allocation and throughput — the two quantities a bad step size
would wreck — to confirm the plateau the paper describes.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.ned import NedOptimizer
from repro.fluid import build_fluid_setup

from _common import SCALE, report

GAMMAS = (0.1, 0.2, 0.4, 1.0, 1.5, 2.5)


def test_gamma_sweep(benchmark):
    def run():
        results = {}
        for gamma in GAMMAS:
            _, _, _, simulator = build_fluid_setup(
                workload="web", load=0.6, optimizer_cls=NedOptimizer,
                optimizer_kwargs={"gamma": gamma}, seed=31,
                n_racks=SCALE.n_racks, hosts_per_rack=SCALE.hosts_per_rack,
                n_spines=SCALE.n_spines)
            metrics = simulator.run(SCALE.fluid_duration,
                                    warmup=SCALE.fluid_warmup)
            results[gamma] = (metrics.mean_over_allocation(),
                              float(np.mean(metrics.total_rate)))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{g:.1f}", f"{over:.2f}", f"{rate:.1f}"]
            for g, (over, rate) in results.items()]
    report(format_table(
        ["gamma", "mean over-alloc (Gbit/s)", "mean throughput (Gbit/s)"],
        rows, title="\n[ablation] NED gamma sweep "
                    "(paper: similar for gamma in [0.2, 1.5])"))

    # The paper's plateau: throughput within 10% across [0.2, 1.5].
    plateau = [results[g][1] for g in (0.2, 0.4, 1.0, 1.5)]
    assert max(plateau) < 1.1 * min(plateau)