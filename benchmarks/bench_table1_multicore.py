"""§6.1 table: multicore allocator runtime vs cores, flows, nodes.

Reproduces the seven-row table two ways:

1. the calibrated cycle cost model over the *real* partitioning and
   fig. 3 schedule (paper-vs-model columns), and
2. actual wall-clock of the simulated multicore engine on scaled-down
   fabrics (shape check: runtime grows with flows/core and LinkBlock
   size, sub-linearly with cores).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.parallel import (PAPER_TABLE, MulticoreNedEngine, fit_cost_model)
from repro.topology import TwoTierClos

from _common import report


def test_cost_model_table(benchmark):
    model, configs, predictions = benchmark(fit_cost_model)
    rows = []
    for row, config, predicted in zip(PAPER_TABLE, configs, predictions):
        rows.append([row.cores, row.nodes, row.flows,
                     f"{row.cycles:.0f}", f"{predicted:.0f}",
                     f"{row.time_us:.2f}", f"{model.time_us(config):.2f}",
                     f"{100 * (predicted / row.cycles - 1):+.1f}%"])
    report(format_table(
        ["cores", "nodes", "flows", "paper cyc", "model cyc",
         "paper us", "model us", "err"],
        rows, title="\n[§6.1 table] allocator runtime (calibrated model)"))
    errors = [abs(p / r.cycles - 1) for p, r in zip(predictions, PAPER_TABLE)]
    assert max(errors) < 0.10


@pytest.mark.parametrize("n_blocks,flows_per_host", [(2, 8), (4, 8), (8, 8)])
def test_engine_wall_clock(benchmark, n_blocks, flows_per_host):
    """Wall time of one parallel iteration on a scaled fabric."""
    topology = TwoTierClos(n_racks=n_blocks * 2, hosts_per_rack=8,
                           n_spines=4)
    engine = MulticoreNedEngine(topology, n_blocks)
    rng = np.random.default_rng(0)
    for i in range(flows_per_host * topology.n_hosts):
        src = int(rng.integers(topology.n_hosts))
        dst = int(rng.integers(topology.n_hosts - 1))
        if dst >= src:
            dst += 1
        engine.add_flow(i, src, dst)
    engine.iterate(3)  # warm up
    stats = benchmark(engine.iterate, 1)
    report(f"[§6.1 engine] {n_blocks * n_blocks} procs, "
           f"{engine.n_flows} flows: {stats.messages} LinkBlock msgs, "
           f"{stats.aggregation_steps} agg steps")
    assert stats.aggregation_steps == int(np.log2(n_blocks))
