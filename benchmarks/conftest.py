"""Benchmark collection configuration."""

import sys
from pathlib import Path

# Allow `import _common` from sibling benchmark modules regardless of
# the pytest rootdir.
sys.path.insert(0, str(Path(__file__).parent))

import _common  # noqa: E402


def pytest_configure(config):
    # Paper-vs-measured tables must land on the real stdout; pytest's
    # fd-level capture would swallow plain prints, so report() suspends
    # capture around each write.
    _common.CAPTURE_MANAGER = config.pluginmanager.get_plugin(
        "capturemanager")
