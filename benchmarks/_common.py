"""Shared benchmark infrastructure: scale knobs, reporting, run cache.

Scale is controlled by ``REPRO_SCALE``:

* ``smoke`` — seconds-long sanity runs (CI),
* ``small`` — default; minutes for the full suite, preserves shapes,
* ``paper`` — the §6.2 topology (144 hosts) and longer horizons;
  expect hours in pure Python.

Benchmarks *print* the paper-vs-measured rows (through ``report``,
which bypasses pytest capture so the tables land in the console/tee),
and still use pytest-benchmark for wall-clock accounting.
"""

from __future__ import annotations

import os
import platform
import sys
from dataclasses import dataclass

__all__ = ["SCALE", "ScaleConfig", "report", "fct_run", "FCT_SCHEMES",
           "bench_environment"]


def bench_environment():
    """Machine/interpreter fingerprint stamped into benchmark JSON so a
    result file (or the committed baseline) records where it came from —
    including which kernel tier (``REPRO_KERNEL_TIER``) produced it."""
    import numpy

    try:
        from repro.core import kernels
        kernel_tier = kernels.describe()
    except Exception:  # repro not importable from this checkout layout
        kernel_tier = None

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "system": platform.system(),
        "machine": platform.machine(),
        "kernel_tier": kernel_tier,
    }


@dataclass(frozen=True)
class ScaleConfig:
    name: str
    n_racks: int
    hosts_per_rack: int
    n_spines: int
    fct_duration: float
    fct_drain: float
    fluid_duration: float
    fluid_warmup: float
    loads: tuple
    convergence_interval: float


_SCALES = {
    "smoke": ScaleConfig("smoke", 2, 4, 2, 1.5e-3, 3e-3, 1e-3, 0.3e-3,
                         (0.4, 0.8), 2e-3),
    "small": ScaleConfig("small", 3, 8, 2, 4e-3, 8e-3, 4e-3, 1e-3,
                         (0.2, 0.4, 0.6, 0.8), 5e-3),
    "paper": ScaleConfig("paper", 9, 16, 4, 20e-3, 20e-3, 10e-3, 2e-3,
                         (0.2, 0.4, 0.6, 0.8), 10e-3),
}

SCALE = _SCALES[os.environ.get("REPRO_SCALE", "small")]


#: set by benchmarks/conftest.py; pytest's fd-level capture swallows
#: even sys.__stdout__, so reporting suspends capture while writing.
CAPTURE_MANAGER = None


def report(text):
    """Print to the real terminal so tables survive pytest capture."""
    capman = CAPTURE_MANAGER
    if capman is not None:
        capman.suspend_global_capture(in_=False)
    try:
        sys.__stdout__.write(text + "\n")
        sys.__stdout__.flush()
    finally:
        if capman is not None:
            capman.resume_global_capture()


# ----------------------------------------------------------------------
# Shared packet-simulation runs for figures 8-11 (same runs, four
# different readouts — mirroring how the paper extracts all four
# figures from one simulation campaign).
# ----------------------------------------------------------------------
FCT_SCHEMES = ("flowtune", "dctcp", "pfabric", "sfqcodel", "xcp")

_RUN_CACHE = {}


def fct_run(scheme, load, seed=17):
    """Memoized (network, stats, duration) for one scheme at one load."""
    key = (scheme, load, seed, SCALE.name)
    if key not in _RUN_CACHE:
        from repro.sim.experiments import fct_experiment
        from repro.topology import TwoTierClos
        topology = TwoTierClos(n_racks=SCALE.n_racks,
                               hosts_per_rack=SCALE.hosts_per_rack,
                               n_spines=SCALE.n_spines)
        _RUN_CACHE[key] = fct_experiment(
            scheme, workload="web", load=load, duration=SCALE.fct_duration,
            drain=SCALE.fct_drain, seed=seed, topology=topology)
    return _RUN_CACHE[key]
