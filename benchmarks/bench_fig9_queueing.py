"""Fig. 9 / §6.5 (G): p99 network queueing delay, 2-hop vs 4-hop paths.

Paper: Flowtune keeps p99 queueing under 8.9 µs; at load 0.8 XCP's
queues are 3.5x longer and DCTCP's 12x.  (pFabric/sfqCoDel are
excluded — their queues are not FIFO so the comparison is not
apples-to-apples; same exclusion as the paper.)

The paper measures this from queue lengths sampled every 1 ms — a
methodology that cannot see sub-interval microbursts.  We report both
that readout (the comparable one) and our stricter per-packet
accounting.
"""


from repro.analysis import format_table

from _common import SCALE, fct_run, report

SCHEMES = ("flowtune", "dctcp", "xcp")


def test_p99_queueing_delay(benchmark):
    loads = SCALE.loads

    def run():
        table = {}
        for scheme in SCHEMES:
            for load in loads:
                _, stats, _ = fct_run(scheme, load)
                table[(scheme, load)] = (
                    stats.p99_sampled_queue_delay(2),
                    stats.p99_sampled_queue_delay(4),
                    stats.p99_queue_delay(4))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for scheme in SCHEMES:
        for load in loads:
            two, four, per_packet = table[(scheme, load)]
            rows.append([scheme, f"{load:.1f}", f"{two * 1e6:.1f}",
                         f"{four * 1e6:.1f}", f"{per_packet * 1e6:.1f}"])
    report(format_table(
        ["scheme", "load", "2-hop p99 (us)", "4-hop p99 (us)",
         "4-hop per-pkt"], rows,
        title="\n[fig 9] p99 queueing delay, sampled-length methodology "
              "(paper @0.8: Flowtune<8.9us, XCP 3.5x, DCTCP 12x)"))

    heavy = loads[-1]
    flowtune = table[("flowtune", heavy)]
    dctcp = table[("dctcp", heavy)]
    # Shape: Flowtune's sampled queues are small; DCTCP's are many
    # times longer (paper: 12x).
    assert max(flowtune[:2]) < 80e-6
    assert dctcp[1] > 3.0 * max(flowtune[1], 1e-6)
