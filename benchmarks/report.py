"""Shared benchmark table rendering.

One renderer, three consumers: the harness's console comparison, the
``$GITHUB_STEP_SUMMARY`` markdown tables the perf CI lanes emit (so a
drifting-but-passing run is visible in the run page without
downloading the artifact), and :mod:`trend`'s cross-run drift table.
Keeping the formatting here means a column added to one view shows up
everywhere the same way.
"""

from __future__ import annotations

import os

__all__ = ["format_table", "write_step_summary"]


def format_table(headers, rows, markdown=False):
    """Render ``rows`` (sequences of cells) under ``headers``.

    ``markdown=True`` produces a GitHub-flavored pipe table; otherwise
    a monospace-aligned text table (first column left-aligned, the
    rest right-aligned, matching the harness's console style).  Cells
    are stringified; ``None`` renders as ``-``.
    """
    rendered = [["-" if cell is None else str(cell) for cell in row]
                for row in rows]
    headers = [str(h) for h in headers]
    if markdown:
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "|".join(" --- " for _ in headers) + "|"]
        lines += ["| " + " | ".join(row) + " |" for row in rendered]
        return "\n".join(lines)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        out = [cells[0].ljust(widths[0])]
        out += [cells[i].rjust(widths[i]) for i in range(1, len(cells))]
        return " ".join(out).rstrip()
    return "\n".join([line(headers)] + [line(row) for row in rendered])


def write_step_summary(markdown, path=None):
    """Append ``markdown`` to the GitHub Actions step summary.

    ``path`` defaults to ``$GITHUB_STEP_SUMMARY``; outside Actions
    (variable unset) this is a silent no-op so local harness runs
    behave identically.  Returns True when something was written.
    """
    path = path or os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return False
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(markdown)
        if not markdown.endswith("\n"):
            handle.write("\n")
    return True
