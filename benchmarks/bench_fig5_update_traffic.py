"""Fig. 5 / §6.4 (C): allocator control traffic vs load and workload.

Paper: with a 0.01 threshold the from-allocator traffic is < 0.17 %,
0.57 % and 1.13 % of network capacity for the Hadoop, cache and web
workloads, and traffic *to* the allocator is substantially lower.
"""

import pytest

from repro.analysis import format_table
from repro.fluid import measure_update_traffic

from _common import SCALE, report

PAPER_FRACTIONS = {"hadoop": 0.0017, "cache": 0.0057, "web": 0.0113}


@pytest.mark.parametrize("workload", ["hadoop", "cache", "web"])
def test_update_traffic(benchmark, workload):
    def run():
        rows = []
        for load in SCALE.loads:
            point = measure_update_traffic(
                workload=workload, load=load, threshold=0.01,
                duration=SCALE.fluid_duration, warmup=SCALE.fluid_warmup,
                seed=5, n_racks=SCALE.n_racks,
                hosts_per_rack=SCALE.hosts_per_rack,
                n_spines=SCALE.n_spines)
            rows.append((load, point["from_allocator"],
                         point["to_allocator"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["load", "from allocator", "to allocator"],
        [[f"{load:.1f}", f"{frm:.4%}", f"{to:.4%}"]
         for load, frm, to in rows],
        title=f"\n[fig 5] control traffic fraction, workload={workload} "
              f"(paper max: {PAPER_FRACTIONS[workload]:.2%})"))
    worst = max(frm for _, frm, _ in rows)
    # Shape: overhead is a small fraction of capacity at every load.
    assert worst < 0.05


def test_workload_ordering(benchmark):
    def run():
        fractions = {}
        for workload in ("hadoop", "cache", "web"):
            point = measure_update_traffic(
                workload=workload, load=0.8, threshold=0.01,
                duration=SCALE.fluid_duration, warmup=SCALE.fluid_warmup,
                seed=5, n_racks=SCALE.n_racks,
                hosts_per_rack=SCALE.hosts_per_rack,
                n_spines=SCALE.n_spines)
            fractions[workload] = point["from_allocator"]
        return fractions

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"[fig 5] at load 0.8: " + ", ".join(
        f"{k}={v:.4%}" for k, v in fractions.items()))
    assert fractions["hadoop"] < fractions["cache"] < fractions["web"]
