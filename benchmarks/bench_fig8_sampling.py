"""Fig. 8-style FCT comparison of the three allocation schemes.

The paper's fig. 8 compares Flowtune's FCTs against schemes that do
not centrally price every flowlet.  This benchmark runs the same
comparison across this repo's three scheduler modes on the fluid
model — full Flowtune pricing, sieve-sampled pricing (elephants only)
and pure ECMP fair share — replaying the identical Poisson flowlet
sequence under each, and records p50/p99 FCT next to the priced-set
size that bought them.

Expected shape (small scale, web @ 0.8): full pricing wins the tail,
ECMP trails it slightly, and the sampled scheme lands near ECMP while
pricing only ~a quarter of the live flows — the priced set is what
the 100k-flow churn benchmark shows the allocator's cost scales with.

Run as a script to (re)generate the committed artifact::

    PYTHONPATH=src python benchmarks/bench_fig8_sampling.py \
        [out.json]
"""

import json
import os
import sys

import pytest

from _common import SCALE, bench_environment, report

#: One committed configuration — knobs the artifact records verbatim.
CONFIG = {
    "workload": "web",
    "load": 0.8,
    "seed": 0,
    "promote_bytes": 50e3,
    "idle_epochs": 100,
}


def run_fct_by_scheme():
    from repro.fluid.experiments import fct_by_scheme

    return fct_by_scheme(
        workload=CONFIG["workload"], load=CONFIG["load"],
        duration=SCALE.fluid_duration, warmup=SCALE.fluid_warmup,
        seed=CONFIG["seed"],
        n_racks=SCALE.n_racks, hosts_per_rack=SCALE.hosts_per_rack,
        n_spines=SCALE.n_spines,
        scheduler_kwargs={"sampled": {
            "promote_bytes": CONFIG["promote_bytes"],
            "idle_epochs": CONFIG["idle_epochs"],
        }})


def _format(results):
    rows = [f"{'scheme':>9}  {'done':>5}  {'p50 us':>8}  {'p99 us':>8}  "
            f"{'priced':>6}"]
    for scheme, r in results.items():
        p50 = "-" if r["p50_fct_us"] is None else f"{r['p50_fct_us']:8.1f}"
        p99 = "-" if r["p99_fct_us"] is None else f"{r['p99_fct_us']:8.1f}"
        rows.append(f"{scheme:>9}  {r['n_completed']:5d}  {p50:>8}  "
                    f"{p99:>8}  {100 * r['priced_fraction_end']:5.0f}%")
    return "\n".join(rows)


def test_fct_by_scheme(benchmark):
    results = benchmark.pedantic(run_fct_by_scheme, rounds=1, iterations=1)
    report(f"\n[fig 8/sampling] p99 FCT by scheme, "
           f"{CONFIG['workload']} @ {CONFIG['load']} ({SCALE.name})\n"
           + _format(results))

    # Shape assertions (generous — the fluid model at small scale).
    for scheme, r in results.items():
        assert r["n_completed"] > 0, scheme
        assert r["p99_fct_us"] is not None, scheme
        # No scheme melts down: the completed population dominates
        # whatever is still in flight when the horizon ends.
        assert r["n_active_end"] < r["n_completed"], scheme
    done = [r["n_completed"] for r in results.values()]
    assert max(done) <= 1.25 * min(done), "same arrivals, similar completions"
    # Full pricing holds the best tail; the sampled scheme stays in
    # its neighbourhood while pricing a strict subset of the flows.
    flowtune, sampled = results["flowtune"], results["sampled"]
    assert flowtune["p99_fct_us"] <= 1.2 * min(
        r["p99_fct_us"] for r in results.values())
    assert sampled["p99_fct_us"] <= 3.0 * flowtune["p99_fct_us"]
    assert sampled["priced_fraction_end"] <= 0.75
    assert results["ecmp"]["n_priced_end"] == 0


def main(argv):
    out = argv[1] if len(argv) > 1 else os.path.join(
        os.path.dirname(__file__), "fig8_sampling.json")
    results = run_fct_by_scheme()
    payload = {
        "figure": "fig8-sampling",
        "description": "p99 FCT of full Flowtune pricing vs sieve-sampled "
                       "pricing vs pure ECMP on the same Poisson flowlet "
                       "sequence (fluid model, two-tier Clos)",
        "scale": SCALE.name,
        "topology": {"n_racks": SCALE.n_racks,
                     "hosts_per_rack": SCALE.hosts_per_rack,
                     "n_spines": SCALE.n_spines},
        "duration_s": SCALE.fluid_duration,
        "warmup_s": SCALE.fluid_warmup,
        "config": CONFIG,
        "environment": bench_environment(),
        "schemes": results,
    }
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(_format(results))
    print(f"wrote {out}")


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(__file__))
    main(sys.argv)
