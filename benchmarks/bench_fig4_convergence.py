"""Fig. 4 + §6.3: convergence to fair allocation under flow churn.

Five senders to one receiver; a flow joins every interval, then one
leaves every interval.  The paper's claims: Flowtune reaches the 1/N
fair share within ~20-100 µs of each event; DCTCP takes milliseconds
and fluctuates; pFabric starves all but one flow; sfqCoDel is fair but
bursty; XCP is conservative.
"""

import numpy as np
import pytest

from repro.analysis import convergence_time, format_table
from repro.sim.experiments import convergence_experiment
from repro.topology import TwoTierClos

from _common import SCALE, report

SCHEMES = ("flowtune", "dctcp", "pfabric", "sfqcodel", "xcp")

_RESULTS = {}


def _run(scheme):
    if scheme not in _RESULTS:
        topology = TwoTierClos(n_racks=2, hosts_per_rack=4, n_spines=2)
        interval = SCALE.convergence_interval
        # Size each flow so it cannot drain before its scheduled stop
        # even if it briefly holds the whole 10 G link.
        flow_gbits = 10.0 * interval * 7
        network, flow_ids = convergence_experiment(
            scheme, n_senders=5, join_interval=interval,
            topology=topology, flow_gbits=flow_gbits)
        _RESULTS[scheme] = (network, flow_ids, interval)
    return _RESULTS[scheme]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_convergence(benchmark, scheme):
    network, flow_ids, interval = benchmark.pedantic(
        _run, args=(scheme,), rounds=1, iterations=1)
    t_end = network.sim.now
    window = network.stats.throughput_window
    series = {f: network.stats.throughput_series(f, t_end)
              for f in flow_ids}

    # Mid-phase per-flow rates (the fig. 4 staircase).
    rows = []
    for phase in range(1, 6):
        t = (phase - 0.5) * interval
        idx = int(t / window)
        rates = [series[f][1][idx] for f in flow_ids]
        rows.append([f"{t * 1e3:.1f} ms", phase]
                    + [f"{r:.2f}" for r in rates])
    report(format_table(
        ["time", "N active"] + [f"flow{i}" for i in range(5)],
        rows, title=f"\n[fig 4] per-flow Gbit/s, scheme={scheme}"))

    # Convergence time of flow 1 to the 2-flow fair share.
    times, gbps = series[flow_ids[1]]
    conv = convergence_time(times, gbps, event_time=interval,
                            target=9.9 / 2, tolerance=0.2,
                            hold=5 * window)
    report(f"[§6.3] {scheme}: flow1 -> fair share in "
           f"{conv * 1e6:.0f} us after joining"
           if np.isfinite(conv) else
           f"[§6.3] {scheme}: flow1 never reached the fair share")
    if scheme == "flowtune":
        # Paper: within ~100 us (we allow the control-plane RTT plus a
        # few 100 us sampling windows).
        assert conv < 10 * 100e-6
    if scheme == "pfabric":
        idx = int(4.5 * interval / window)
        rates = sorted(series[f][1][idx] for f in flow_ids)
        assert rates[0] < 0.25 * max(rates[-1], 1e-9)  # starvation
