#!/usr/bin/env python
"""Hot-path performance harness with a regression gate.

Measures the throughput of the allocator's two critical loops —
``FlowtuneAllocator.iterate`` under flowlet churn at 1k/10k/100k
flows, and one ``MulticoreNedEngine`` parallel iteration — and writes
the results as machine-readable ``BENCH_hotpath.json``.  A committed
baseline (``benchmarks/baseline.json``) plus a tolerance gate turn the
numbers into a CI check: any benchmark that lands more than
``--tolerance`` (default 30 %) below baseline fails the run when
``--check`` is given.

Hardware normalization: raw ops/sec is meaningless across machines
(laptop vs CI runner), so every run also times a fixed pure-numpy
*calibration* kernel shaped like the allocator's gather/scatter work.
The gate compares each benchmark's ops/sec *relative to calibration*
against the baseline's relative score, which makes the committed
baseline portable across hosts.

Usage::

    python benchmarks/harness.py --quick             # CI smoke (<2 min)
    python benchmarks/harness.py                     # full mode
    python benchmarks/harness.py --quick --check     # gate vs baseline
    python benchmarks/harness.py --update-baseline   # refresh baseline

The harness deliberately works against both the current tree and the
seed implementation (``apply_churn`` is used when present, per-event
``flowlet_start``/``flowlet_end`` otherwise) so one script can measure
speedups across revisions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

import report  # noqa: E402
from _common import bench_environment  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hotpath.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"

#: per-benchmark (n_ops, repeats) knobs for the two modes.
_MODES = {
    "quick": {"warmup_iters": 20, "repeats": 3,
              "churn_ops": {1_000: 60, 10_000: 30, 100_000: 10,
                            1_000_000: 3},
              # Short measurements are hostage to scheduler bursts on
              # shared single-core hosts; these two lanes were the
              # noisiest, so quick mode gives them enough ops that one
              # burst cannot move the best-of-repeats past the gate.
              "multicore_ops": 30,
              "fluid_ops": 20,
              "speedup_flows": 4_096, "speedup_ops": 6,
              "speedup_workers": (1, 2, 4),
              "socket_workers": (1, 2),
              "barrier_steps": 300,
              # I/O ping-pong over threads needs a long enough window
              # that scheduler bursts average out (~0.2s per repeat).
              "frame_batch_steps": 3_000,
              "service_flows": 1_000,
              "service_arrivals": 150,
              "service_rate_per_sec": 150.0,
              # p99-based scores are tail-hostage; best-of-2 phases
              # keeps one scheduler burst from moving the gate.
              "fanout_clients": 100,
              "fanout_flows_per_client": 3,
              "fanout_events_per_client": 8,
              "fanout_rate_per_sec": 250.0,
              "fanout_phases": 2,
              "sampled_cycle": 32,
              "sampled_batches": 5},
    "full": {"warmup_iters": 50, "repeats": 3,
             "churn_ops": {1_000: 300, 10_000: 150, 100_000: 40,
                           1_000_000: 6},
             "multicore_ops": 40,
             "fluid_ops": 50,
             "speedup_flows": 32_768, "speedup_ops": 12,
             "speedup_workers": (1, 2, 4, 8, 16),
             "socket_workers": (1, 2, 4),
             "barrier_steps": 1_200,
             "frame_batch_steps": 8_000,
             "service_flows": 1_000,
             "service_arrivals": 400,
             "service_rate_per_sec": 250.0,
             "fanout_clients": 120,
             "fanout_flows_per_client": 4,
             "fanout_events_per_client": 15,
             "fanout_rate_per_sec": 300.0,
             "fanout_phases": 2,
             "sampled_cycle": 32,
             "sampled_batches": 9},
}

#: Benchmarks recorded in the JSON but *excluded* from the baseline
#: regression gate: their scores depend on the host's core count (the
#: calibration kernel is single-threaded, so normalization cannot make
#: real-parallelism numbers portable between a laptop and a CI runner).
UNGATED = frozenset({"parallel_speedup", "parallel_speedup_socket"})

#: Benchmarks too heavy for smoke runs: default quick runs (and the
#: quick baseline the smoke gate compares against) skip them; full
#: runs always include them, and ``--only`` can still name one
#: explicitly in either mode.
FULL_ONLY = frozenset({"iterate_churn_1m"})


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
def best_rate(op, n_ops, repeats):
    """ops/sec from the fastest of ``repeats`` timed batches.

    ``op`` receives a monotonically increasing op index so stateful
    benchmarks (churn) never reuse flow ids across batches.
    """
    counter = 0
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(n_ops):
            op(counter)
            counter += 1
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return n_ops / best


# ----------------------------------------------------------------------
# calibration: fixed numpy kernel shaped like the allocator hot loop
# ----------------------------------------------------------------------
def bench_calibration(mode):
    """Gather + reduce + bincount on fixed arrays (machine speed probe)."""
    rng = np.random.default_rng(7)
    n_flows, route_len, n_links = 10_000, 4, 512
    routes = rng.integers(0, n_links, size=(n_flows, route_len))
    prices = rng.random(n_links + 1)
    flat = routes.reshape(-1)

    def op(_):
        rho = prices[flat].reshape(n_flows, route_len).sum(axis=1)
        rates = 1.0 / (rho + 1.0)
        np.bincount(flat, weights=np.repeat(rates, route_len),
                    minlength=n_links + 1)

    n_ops = 30 if mode == "quick" else 100
    ops = best_rate(op, n_ops, _MODES[mode]["repeats"])
    return {"ops_per_sec": ops,
            "params": {"n_flows": n_flows, "n_links": n_links,
                       "n_ops": n_ops}}


# ----------------------------------------------------------------------
# allocator iterate-under-churn
# ----------------------------------------------------------------------
def _apply_churn(allocator, starts=(), ends=()):
    """Batched churn when available (current tree), per-event otherwise
    (seed implementation) — lets one harness measure both revisions."""
    if hasattr(allocator, "apply_churn"):
        allocator.apply_churn(starts=starts, ends=ends)
    else:
        for flow_id in ends:
            allocator.flowlet_end(flow_id)
        for start in starts:
            allocator.flowlet_start(*start)


def _random_pair(topology, rng):
    src = int(rng.integers(topology.n_hosts))
    dst = int(rng.integers(topology.n_hosts - 1))
    if dst >= src:
        dst += 1
    return src, dst


def _random_route(topology, rng, flow_id):
    src, dst = _random_pair(topology, rng)
    return topology.route(src, dst, flow_id)


def _churn_setup(n_flows, total_batches, mode, seed=17):
    """Warmed-up allocator plus ``total_batches`` pre-computed churn
    batches for the §6.2 steady-state loop (shared by the benchmark
    and ``--profile``).

    Routes are pre-computed so the timed loop measures allocator work,
    not ``topology.route()``.
    """
    from repro.core import FlowtuneAllocator
    from repro.topology import TwoTierClos

    config = _MODES[mode]
    topology = TwoTierClos(n_racks=9, hosts_per_rack=16, n_spines=4)
    allocator = FlowtuneAllocator(topology.link_set())
    rng = np.random.default_rng(seed)

    _apply_churn(allocator, starts=[
        (("f", i), _random_route(topology, rng, i)) for i in range(n_flows)])
    allocator.iterate(config["warmup_iters"])

    churn = max(1, n_flows // 100)
    batches = []
    next_id = n_flows
    oldest = 0
    for _ in range(total_batches):
        ends = [("f", i) for i in range(oldest, oldest + churn)]
        starts = [(("f", next_id + j),
                   _random_route(topology, rng, next_id + j))
                  for j in range(churn)]
        oldest += churn
        next_id += churn
        batches.append((starts, ends))
    return allocator, batches, churn


def bench_iterate_churn(n_flows, mode, seed=17):
    """One op = one churn batch (1 % of flows end, 1 % start) followed
    by one ``iterate()`` — the §6.2 steady-state allocator loop."""
    config = _MODES[mode]
    n_ops = config["churn_ops"][n_flows]
    allocator, batches, churn = _churn_setup(
        n_flows, (config["repeats"] + 1) * n_ops + 2, mode, seed)

    def op(i):
        starts, ends = batches[i]
        _apply_churn(allocator, starts=starts, ends=ends)
        allocator.iterate(1)

    ops = best_rate(op, n_ops, config["repeats"])
    return {"ops_per_sec": ops,
            "params": {"n_flows": n_flows, "churn_per_op": churn,
                       "n_ops": n_ops, "seed": seed}}


# ----------------------------------------------------------------------
# sieve sampling: 100k-flow sampled allocator vs 10k full Flowtune
# ----------------------------------------------------------------------
def bench_iterate_churn_sampled(mode, seed=17):
    """The priced-set bound, measured: a ``SampledAllocator`` holding
    100k flows with a ~10 % promoted elephant set must iterate under
    churn at close to the rate of a *full* Flowtune allocator holding
    only the 10k elephants — the whole point of sieve sampling is that
    the other 90k mice ride ECMP fair share off the priced hot path.

    One op = one churn batch + one ``iterate()``, like
    ``bench_iterate_churn`` — but both schemes run the *same absolute
    churn* (100 events/op, the 10k lane's 1 % convention) so the op
    isolates the standing-population cost the claim is about; scaling
    churn with the population would instead measure the per-event
    Python floor 10x more often on the sampled side.  The sampled op
    additionally carries the §6.2 usage stream (every 10th new flow
    reports elephant-sized usage, sustaining promotions, demotion
    scans, and the deferred elephant-end flush every epoch).

    Both schemes are measured **in-process and interleaved** in
    mini-batches of one full mice-refresh cycle each (so every batch
    amortizes exactly one O(mice) recompute), and the reported rate is
    the per-scheme median over batches: single-core hosts drift 20 %+
    between back-to-back runs, and interleaving + median is what keeps
    the committed ``slowdown_vs_full_10k`` ratio reproducible.
    ``ops_per_sec`` (gated) is the sampled scheme's rate; the full-10k
    reference rides along for the ratio the acceptance claim names.
    """
    from repro.core import FlowtuneAllocator
    from repro.sampling import SampledAllocator
    from repro.topology import TwoTierClos

    config = _MODES[mode]
    cycle = config["sampled_cycle"]
    n_batches = config["sampled_batches"]
    total_ops = (n_batches + 1) * cycle   # +1 warmup mini-batch each
    churn = 100
    n_ref, n_samp, report_every = 10_000, 100_000, 10
    promote_bytes = 1e6
    topology = TwoTierClos(n_racks=9, hosts_per_rack=16, n_spines=4)

    def make_batches(rng, n_flows):
        batches = []
        next_id, oldest = n_flows, 0
        for _ in range(total_ops):
            ends = [("f", i) for i in range(oldest, oldest + churn)]
            starts = [(("f", next_id + j),
                       _random_route(topology, rng, next_id + j))
                      for j in range(churn)]
            oldest += churn
            next_id += churn
            batches.append((starts, ends))
        return batches

    rng = np.random.default_rng(seed)
    ref = FlowtuneAllocator(topology.link_set())
    ref.apply_churn(starts=[(("f", i), _random_route(topology, rng, i))
                            for i in range(n_ref)])
    ref.iterate(config["warmup_iters"])
    ref_batches = make_batches(rng, n_ref)

    rng = np.random.default_rng(seed)
    samp = SampledAllocator(topology.link_set(),
                            promote_bytes=promote_bytes,
                            idle_epochs=10_000, mice_refresh=cycle)
    samp.apply_churn(starts=[(("f", i), _random_route(topology, rng, i))
                             for i in range(n_samp)])
    for i in range(0, n_samp, report_every):
        samp.report_usage(("f", i), 10 * promote_bytes)
    samp.iterate(config["warmup_iters"])
    samp_batches = make_batches(rng, n_samp)

    def ref_op(i):
        starts, ends = ref_batches[i]
        ref.apply_churn(starts=starts, ends=ends)
        ref.iterate(1)

    def samp_op(i):
        starts, ends = samp_batches[i]
        samp.apply_churn(starts=starts, ends=ends)
        for j in range(0, len(starts), report_every):
            samp.report_usage(starts[j][0], 10 * promote_bytes)
        samp.iterate(1)

    for i in range(cycle):   # warmup mini-batch, interleaved like the rest
        ref_op(i)
        samp_op(i)
    ref_t, samp_t = [], []
    for b in range(1, n_batches + 1):
        lo = b * cycle
        t0 = time.perf_counter()
        for i in range(lo, lo + cycle):
            ref_op(i)
        ref_t.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        for i in range(lo, lo + cycle):
            samp_op(i)
        samp_t.append(time.perf_counter() - t0)

    ref_rate = cycle / float(np.median(ref_t))
    samp_rate = cycle / float(np.median(samp_t))
    return {
        "ops_per_sec": samp_rate,
        "full_10k_ops_per_sec": ref_rate,
        "slowdown_vs_full_10k": ref_rate / samp_rate,
        "params": {"n_flows": n_samp, "n_priced": samp.n_priced,
                   "priced_fraction": samp.priced_fraction,
                   "full_reference_flows": n_ref,
                   "churn_per_op": churn, "cycle_ops": cycle,
                   "batches": n_batches, "mice_refresh": cycle,
                   "promote_bytes": promote_bytes, "seed": seed},
    }


# ----------------------------------------------------------------------
# --profile: per-kernel breakdown of the churn iterate
# ----------------------------------------------------------------------
def profile_churn_iterate(n_flows, mode, seed=17, out=None):
    """Time every FlowTable kernel inside the iterate-under-churn op.

    Wraps the table's kernel entry points (and the allocator/optimizer
    phase boundaries) with accumulating timers, replays the same
    churn-batch loop ``bench_iterate_churn`` times, and prints a
    per-kernel table: total ms, ms per op, share of the op.  This is
    how the *next* optimization target gets measured instead of
    guessed.  Nested entries overlap their parents (``csr_sync`` runs
    inside the first kernel that touches a stale index; kernels run
    inside ``optimizer.iterate``/``normalize``), so the parent rows
    are context, not disjoint buckets.
    """
    from repro.core import kernels as kernel_tiers

    out = out if out is not None else sys.stdout
    n_ops = max(10, min(40, _MODES[mode]["churn_ops"].get(n_flows, 20)))
    allocator, batches, churn = _churn_setup(n_flows, n_ops + 2, mode,
                                             seed)
    table = allocator.table
    # Kernel rows carry the active tier so profiles captured under
    # different REPRO_KERNEL_TIER settings stay distinguishable.
    tier_tag = kernel_tiers.describe()
    suffix = f"[{kernel_tiers.active().name}]"

    times, calls = {}, {}

    def wrap(obj, name, label):
        inner = getattr(obj, name)

        def timed(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return inner(*args, **kwargs)
            finally:
                times[label] = times.get(label, 0.0) \
                    + (time.perf_counter() - t0)
                calls[label] = calls.get(label, 0) + 1
        setattr(obj, name, timed)

    wrap(table, "_sync_csr", f"csr_sync{suffix}")
    wrap(table, "price_sums", f"price_sums{suffix}")
    wrap(table, "link_totals", f"link_totals{suffix}")
    wrap(table, "link_totals2", f"link_totals2{suffix}")
    wrap(table, "max_link_value", f"max_link_value{suffix}")
    wrap(table, "apply_churn", f"churn_apply{suffix}")
    wrap(allocator.optimizer, "iterate", "optimizer.iterate")

    # ``self.normalizer(...)`` resolves __call__ on the type, so wrap
    # by swapping the attribute for a timing callable instead.
    inner_normalizer = allocator.normalizer

    def timed_normalizer(table, rates, link_load=None):
        t0 = time.perf_counter()
        try:
            return inner_normalizer(table, rates, link_load=link_load)
        finally:
            times["normalize"] = times.get("normalize", 0.0) \
                + (time.perf_counter() - t0)
            calls["normalize"] = calls.get("normalize", 0) + 1
    allocator.normalizer = timed_normalizer

    t0 = time.perf_counter()
    for i in range(n_ops):
        starts, ends = batches[i]
        allocator.apply_churn(starts=starts, ends=ends)
        allocator.iterate(1)
    wall = time.perf_counter() - t0

    kernel_labels = tuple(
        f"{name}{suffix}" for name in
        ("csr_sync", "price_sums", "link_totals", "link_totals2",
         "max_link_value", "churn_apply"))
    phases = ("optimizer.iterate", "normalize")
    rows = []
    for label in kernel_labels + phases:
        if label not in times:
            continue
        total = times[label]
        rows.append([label, calls[label], f"{1000 * total:.1f}",
                     f"{1000 * total / n_ops:.3f}",
                     f"{100 * total / wall:.1f}%"])
    accounted = sum(times.get(label, 0.0)
                    for label in (f"churn_apply{suffix}",) + phases)
    rows.append(["other (threshold mask, ids, loop)", n_ops,
                 f"{1000 * (wall - accounted):.1f}",
                 f"{1000 * (wall - accounted) / n_ops:.3f}",
                 f"{100 * (wall - accounted) / wall:.1f}%"])
    print(f"profile[kernel tier {tier_tag}]: {n_ops} ops of "
          f"churn({churn}) + iterate(1) at {n_flows} flows, "
          f"{1000 * wall / n_ops:.2f} ms/op "
          f"({n_ops / wall:.1f} ops/sec)", file=out)
    print(report.format_table(
        ["kernel", "calls", "total ms", "ms/op", "share"], rows),
        file=out)
    print("(kernel rows nest inside the phase rows; csr_sync also "
          "counts inside the kernel that triggered it)", file=out)
    return 0


# ----------------------------------------------------------------------
# multicore engine iteration
# ----------------------------------------------------------------------
def bench_multicore(mode, n_blocks=4, flows_per_host=8, seed=0):
    """One op = one full parallel NED iteration (rate partials,
    fig. 3 aggregation, price update, distribution) on a 16-processor
    grid."""
    from repro.parallel import MulticoreNedEngine
    from repro.topology import TwoTierClos

    config = _MODES[mode]
    topology = TwoTierClos(n_racks=n_blocks * 2, hosts_per_rack=8,
                           n_spines=4)
    engine = MulticoreNedEngine(topology, n_blocks)
    rng = np.random.default_rng(seed)
    for i in range(flows_per_host * topology.n_hosts):
        src, dst = _random_pair(topology, rng)
        engine.add_flow(i, src, dst)
    engine.iterate(3)  # warm up

    ops = best_rate(lambda _: engine.iterate(1),
                    config["multicore_ops"], config["repeats"])
    return {"ops_per_sec": ops,
            "params": {"n_processors": n_blocks * n_blocks,
                       "n_flows": engine.n_flows,
                       "n_ops": config["multicore_ops"], "seed": seed}}


# ----------------------------------------------------------------------
# end-to-end fluid-simulator tick rate
# ----------------------------------------------------------------------
def bench_fluid_ticks(mode, seed=5, ticks_per_op=20):
    """Driver-loop throughput: one op advances the §6.2 fluid simulator
    ``ticks_per_op`` allocator ticks — Poisson arrivals, batched churn,
    ``FlowtuneAllocator.iterate``, notification accounting, transmit —
    so the regression gate covers the whole loop, not just the NUM
    kernel.  The reported score is simulated *ticks per second*."""
    from repro.fluid import build_fluid_setup

    config = _MODES[mode]
    n_ops = config["fluid_ops"]
    _, _, _, simulator = build_fluid_setup(
        workload="web", load=0.6, n_racks=3, hosts_per_rack=8,
        n_spines=2, seed=seed)
    simulator.run(200 * simulator.tick)  # ramp to steady-state churn

    def op(_):
        simulator.run(ticks_per_op * simulator.tick)

    ops = best_rate(op, n_ops, config["repeats"])
    return {"ops_per_sec": ops * ticks_per_op,
            "params": {"ticks_per_op": ticks_per_op, "n_ops": n_ops,
                       "load": 0.6, "n_hosts": 24, "seed": seed,
                       "n_active_end": simulator.n_active}}


# ----------------------------------------------------------------------
# real parallel speedup: worker-process backend vs single-core NED
# ----------------------------------------------------------------------
def bench_parallel_speedup(mode, n_blocks=4, seed=11, fabric="shm",
                           workers_key="speedup_workers"):
    """Measured wall-clock speedup of the worker-process NED backend.

    Times one full parallel iteration on a ``n_blocks x n_blocks``
    (default 16-FlowBlock) grid at several worker counts against
    single-core NED over the *same* flows, in real processes — the
    §6.1 experiment measured instead of modeled.  ``fabric`` selects
    the coordination layer: ``"shm"`` (shared memory, sense-reversing
    barrier) or ``"socket"`` (TCP frames — the multi-host transport,
    measured here over loopback).  ``ops_per_sec`` is the 8-worker
    rate (or the largest measured pool when the mode stops earlier).
    In the gate these benchmarks are informational only (see
    ``UNGATED``): speedup is a property of the host's core count as
    much as of the code.
    """
    from repro.core.ned import NedOptimizer
    from repro.core.network import FlowTable
    from repro.parallel import MulticoreNedEngine
    from repro.topology import TwoTierClos

    config = _MODES[mode]
    n_flows = config["speedup_flows"]
    n_ops = config["speedup_ops"]
    topology = TwoTierClos(n_racks=n_blocks * 2, hosts_per_rack=16,
                           n_spines=4)
    rng = np.random.default_rng(seed)
    flows = []
    for i in range(n_flows):
        src, dst = _random_pair(topology, rng)
        flows.append((i, src, dst))

    table = FlowTable(topology.link_set())
    table.apply_churn(starts=[(i, topology.route(src, dst, i))
                              for i, src, dst in flows])
    single = NedOptimizer(table)
    single.iterate(3)
    single_ops = best_rate(lambda _: single.iterate(1), n_ops,
                           config["repeats"])

    per_worker_ops = {}
    reserve = max(64, n_flows // 4)
    for n_workers in config[workers_key]:
        with MulticoreNedEngine(topology, n_blocks, backend="process",
                                n_workers=n_workers, fabric=fabric,
                                reserve_per_block=reserve) as engine:
            engine.apply_churn(starts=flows)
            engine.iterate(3)
            per_worker_ops[str(n_workers)] = best_rate(
                lambda _: engine.iterate(1), n_ops, config["repeats"])

    target = per_worker_ops.get(
        "8", per_worker_ops[str(max(config[workers_key]))])
    return {
        "ops_per_sec": target,
        "single_core_ops_per_sec": single_ops,
        "workers_ops_per_sec": per_worker_ops,
        "speedup_vs_single_core": {
            w: ops / single_ops for w, ops in per_worker_ops.items()},
        "params": {"n_blocks": n_blocks, "n_flows": n_flows,
                   "n_ops": n_ops, "seed": seed, "fabric": fabric,
                   "cpu_count": os.cpu_count()},
    }


# ----------------------------------------------------------------------
# fabric step-synchronization cost
# ----------------------------------------------------------------------
def bench_barrier_step(mode, n_workers=16):
    """Per-step cost of the fabric barrier on the 16-worker grid.

    One op is one full barrier round across all workers.  Measures the
    shm fabric's sense-reversing flag-array barrier (``ops_per_sec``,
    gated) next to the ``multiprocessing.Barrier`` it replaced
    (``mp_barrier_ops_per_sec``, recorded so the speedup claim stays
    auditable) — the ROADMAP's "shrink the small-grid constant term"
    item, measured.

    The barrier mode is pinned to ``"block"`` so the gated score
    always measures the same code path: the auto-selected mode flips
    to pure spinning on hosts with >= 16 cores, which would make the
    baseline compare different algorithms across machines (the
    engine still auto-selects at run time; the spin path's
    correctness is covered by the fabric test suite).
    """
    from repro.parallel import measure_barrier_rate

    n_steps = _MODES[mode]["barrier_steps"]
    repeats = _MODES[mode]["repeats"]
    # Best-of-repeats, like every other benchmark: a 16-process
    # barrier sweep is hostage to scheduler bursts on shared hosts,
    # and one clean window is what the gate should compare.
    sense = max(measure_barrier_rate("sense", n_workers, n_steps,
                                     barrier_mode="block")
                for _ in range(repeats))
    mp_rate = max(measure_barrier_rate("mp", n_workers, n_steps)
                  for _ in range(repeats))
    return {
        "ops_per_sec": sense,
        "mp_barrier_ops_per_sec": mp_rate,
        "speedup_vs_mp_barrier": sense / mp_rate,
        "params": {"n_workers": n_workers, "n_steps": n_steps,
                   "barrier_mode": "block",
                   "cpu_count": os.cpu_count()},
    }


# ----------------------------------------------------------------------
# socket-fabric step exchange: per-peer batching vs per-frame sendall
# ----------------------------------------------------------------------
class _CountingSock:
    """Socket proxy counting send/recv syscalls (selectors-compatible)."""

    def __init__(self, sock):
        self._sock = sock
        self.send_calls = 0
        self.recv_calls = 0

    def send(self, data):
        self.send_calls += 1
        return self._sock.send(data)

    def sendmsg(self, buffers):
        self.send_calls += 1
        return self._sock.sendmsg(buffers)

    def recv_into(self, buf, nbytes=0):
        self.recv_calls += 1
        return self._sock.recv_into(buf, nbytes)

    def fileno(self):
        return self._sock.fileno()


def bench_socket_frame_batch(mode, n_transfers=8, slice_len=260):
    """One op = one schedule step's LinkBlock slices exchanged both
    ways between two workers over a socketpair.

    Measures the shipped protocol — ``n_transfers`` slices coalesced
    into one :class:`~repro.parallel.fabric.PeerBatch` frame per peer,
    driven by the nonblocking ``exchange_batches`` loop — against the
    per-frame blocking ``send_frame``/``recv_frame`` protocol it
    replaced, with send/recv syscalls counted on one side.  The
    defaults mirror a 16-block grid at 2 workers: ~4 aggregation
    transfers per direction per step (x2 arrays), 260-entry
    LinkBlocks.  ``ops_per_sec`` (gated) is the batched steps/sec;
    the per-frame figures are recorded alongside so the syscall
    reduction stays auditable in ``BENCH_hotpath.json``.  The counted
    figures are **send/recv syscalls only** — the batched loop also
    spends ~3 selector ops (register/select/unregister) per step,
    which the blocking per-frame path does not.
    """
    import socket as socketlib
    import threading

    from repro.parallel.fabric import (PeerBatch, RecvBatch, TAG_DATA,
                                       exchange_batches, recv_frame,
                                       send_frame)

    config = _MODES[mode]
    n_steps = config["frame_batch_steps"]
    repeats = config["repeats"]
    total_floats = n_transfers * slice_len
    slices = [np.arange(slice_len, dtype=np.float64) + t
              for t in range(n_transfers)]

    def run_batched():
        import selectors

        a, b = socketlib.socketpair()
        counted = _CountingSock(a)
        for sock in (a, b):
            sock.setblocking(False)
        done = threading.Event()

        def drive(sock, selector):
            # Mirrors _SocketEndpoint.step_exchange: reusable batch
            # buffers and a long-lived selector per worker.
            out, inc = PeerBatch(), RecvBatch()
            for _ in range(n_steps):
                payload = out.stage(total_floats)
                for t, part in enumerate(slices):
                    payload[t * slice_len: (t + 1) * slice_len] = part
                inc.stage(8 * total_floats)
                exchange_batches({0: sock}, {0: out}, {0: inc},
                                 timeout=120.0, selector=selector)

        def peer_side():
            with selectors.DefaultSelector() as selector:
                drive(b, selector)
            done.set()

        thread = threading.Thread(target=peer_side, daemon=True)
        thread.start()
        start = time.perf_counter()
        with selectors.DefaultSelector() as selector:
            drive(counted, selector)
        elapsed = time.perf_counter() - start
        thread.join(timeout=120.0)
        assert done.is_set(), "batched exchange wedged"
        a.close()
        b.close()
        syscalls = (counted.send_calls + counted.recv_calls) / n_steps
        return n_steps / elapsed, syscalls

    def run_per_frame():
        """The replaced protocol: every transfer its own blocking
        frame, all sends issued before any read (safe here only
        because the traffic fits default socket buffers)."""
        a, b = socketlib.socketpair()
        counted = _CountingSock(a)
        done = threading.Event()

        def peer_side():
            for _ in range(n_steps):
                for part in slices:
                    send_frame(b, TAG_DATA, part)
                for _ in range(n_transfers):
                    recv_frame(b, expect=TAG_DATA)
            done.set()

        thread = threading.Thread(target=peer_side, daemon=True)
        thread.start()
        start = time.perf_counter()
        for _ in range(n_steps):
            for part in slices:
                send_frame(counted, TAG_DATA, part)
            for _ in range(n_transfers):
                recv_frame(counted, expect=TAG_DATA)
        elapsed = time.perf_counter() - start
        thread.join(timeout=120.0)
        assert done.is_set(), "per-frame exchange wedged"
        a.close()
        b.close()
        syscalls = (counted.send_calls + counted.recv_calls) / n_steps
        return n_steps / elapsed, syscalls

    batched = [run_batched() for _ in range(repeats)]
    per_frame = [run_per_frame() for _ in range(repeats)]
    batched_ops = max(rate for rate, _ in batched)
    per_frame_ops = max(rate for rate, _ in per_frame)
    return {
        "ops_per_sec": batched_ops,
        "per_frame_ops_per_sec": per_frame_ops,
        "speedup_vs_per_frame": batched_ops / per_frame_ops,
        "send_recv_syscalls_per_step": batched[0][1],
        "per_frame_send_recv_syscalls_per_step": per_frame[0][1],
        "params": {"n_transfers": n_transfers, "slice_len": slice_len,
                   "n_steps": n_steps,
                   "payload_bytes_per_step": 8 * total_floats},
    }


# ----------------------------------------------------------------------
# always-on service: admission-to-rate-update latency SLO
# ----------------------------------------------------------------------
def bench_service_latency(mode, seed=23):
    """Admission-to-rate-update latency of the always-on service.

    Spawns a real ``python -m repro.service`` child (auto duty cycle)
    on the 9x16x4 Clos of ``iterate_churn``, prepopulates
    ``service_flows`` concurrent flows over the socket, then drives
    Poisson *open-loop* load (a sender thread starts one flowlet and
    ends the oldest at exponential arrival times, never waiting for
    replies) while the main thread polls for each new flow's first
    rate update.  The latency of one arrival is wall-clock from just
    before its START frame is sent to the delta RATES frame naming it
    — admission to decision, the budget Flowtune's centralized claim
    lives on.  ``ops_per_sec`` is ``1 / p99`` from the best (lowest
    p99) of ``repeats`` phases, so the gate tracks the tail, not the
    mean; the bare one-``iterate`` cost at the same flow count is
    recorded alongside to keep the service's overhead auditable
    (``p99_over_iterate`` — the acceptance SLO is <= 10x).
    """
    import threading

    from repro.core import FlowtuneAllocator
    from repro.service import FlowtuneClient, spawn_service
    from repro.topology import TwoTierClos

    config = _MODES[mode]
    n_flows = config["service_flows"]
    arrivals = config["service_arrivals"]
    arrival_rate = config["service_rate_per_sec"]
    repeats = config["repeats"]
    topology = TwoTierClos(n_racks=9, hosts_per_rack=16, n_spines=4)
    rng = np.random.default_rng(seed)

    total_ids = n_flows + repeats * arrivals + 1
    routes = [_random_route(topology, rng, i) for i in range(total_ids)]

    # In-process reference at the same flow count: one admission the
    # way the service performs it — apply one start + one end, run one
    # iterate, materialize the notifications (the same op shape as
    # ``iterate_churn``, at churn 1).  The serving gamma is the
    # paper's simulation value 0.4 — NED at full step oscillates >1 %
    # per iteration at this load, which would re-notify ~every flow
    # every cycle forever; a *service* must converge and go quiet
    # (the reference allocator matches).
    gamma = 0.4
    ref = FlowtuneAllocator(topology.link_set(), gamma=gamma)
    ref.apply_churn(starts=[(i, routes[i]) for i in range(n_flows)])
    ref.iterate(config["warmup_iters"])

    def ref_op(i):
        # Start one flow, end the oldest, decide, render notifications
        # — the sender thread's exact admission, minus the wire.
        fid = n_flows + i
        ref.apply_churn(starts=[(fid, routes[fid % total_ids])],
                        ends=[i])
        len(ref.iterate(1).updates)

    iter_ops = best_rate(ref_op, max(20, config["churn_ops"][1_000] // 3),
                         repeats)
    iterate_s = 1.0 / iter_ops

    with spawn_service(racks=9, hosts_per_rack=16, spines=4,
                       mode="auto", gamma=gamma) as handle:
        with FlowtuneClient(handle.address, handle.token_hex) as client:
            for lo in range(0, n_flows, 200):
                client.apply_churn(starts=[
                    (i, routes[i]) for i in range(lo,
                                                  min(lo + 200, n_flows))])
            client.wait_for_rates(range(n_flows), timeout=300.0)

            next_id = n_flows
            oldest = 0
            phases = []
            for _ in range(repeats):
                gaps = rng.exponential(1.0 / arrival_rate, size=arrivals)
                send_at = {}
                got_at = {}
                first, base_old = next_id, oldest

                def sender(first=first, base_old=base_old, gaps=gaps,
                           send_at=send_at):
                    t_next = time.perf_counter()
                    for k in range(arrivals):
                        t_next += gaps[k]
                        delay = t_next - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                        fid = first + k
                        send_at[fid] = time.perf_counter()
                        client.apply_churn(starts=[(fid, routes[fid])],
                                           ends=[base_old + k])

                thread = threading.Thread(target=sender, daemon=True)
                thread.start()
                deadline = time.monotonic() + arrivals / arrival_rate + 60.0
                while (len(got_at) < arrivals
                       and time.monotonic() < deadline):
                    for fid, _rate in client.poll(timeout=0.02):
                        if fid >= first and fid not in got_at:
                            got_at[fid] = time.perf_counter()
                thread.join(timeout=60.0)
                next_id += arrivals
                oldest += arrivals
                lat = np.array([got_at[f] - send_at[f]
                                for f in got_at], dtype=np.float64)
                if len(lat):
                    phases.append(lat)
            client.shutdown_service()

    if not phases:
        raise RuntimeError("service_latency: no rate updates observed")
    best = min(phases, key=lambda lat: float(np.percentile(lat, 99)))
    p50 = float(np.percentile(best, 50))
    p99 = float(np.percentile(best, 99))
    return {
        "ops_per_sec": 1.0 / p99,
        "p50_ms": 1e3 * p50,
        "p99_ms": 1e3 * p99,
        "mean_ms": 1e3 * float(best.mean()),
        "iterate_ms": 1e3 * iterate_s,
        "p99_over_iterate": p99 / iterate_s,
        "received": int(sum(len(lat) for lat in phases)),
        "params": {"n_flows": n_flows, "arrivals_per_phase": arrivals,
                   "arrival_rate_per_sec": arrival_rate,
                   "repeats": repeats, "seed": seed,
                   "n_hosts": topology.n_hosts},
    }


def bench_service_fanout(mode, seed=31):
    """Admission-to-rate-update latency with 100+ concurrent clients.

    The unreliable-client gate: ``fanout_clients`` independent
    ``FlowtuneClient`` connections (each holding
    ``fanout_flows_per_client`` flows) against one spawned service
    child, with the ingest rate limiter *enabled* (a generous
    per-client budget — the limiter must sit in the hot path without
    costing latency).  A single sender thread drives a merged Poisson
    arrival process at ``fanout_rate_per_sec`` aggregate — each event
    picks a uniform-random client (the superposition property: every
    client then sees its own Poisson churn), starts one flowlet and
    ends that client's oldest.  The main thread sweeps all clients
    with nonblocking polls, stamping each new flow's first rate
    update at its owner.

    Reported: p50/p99 over all events in the best of
    ``fanout_phases`` phases, plus the per-client view the duty
    cycle's fairness shows up in — the median and max of per-client
    p99 and Jain's fairness index over per-client mean latency (1.0 =
    every client served equally).  The gated score is ``1/p50``: with
    100 clients sharing one core with the service child, the p99 tail
    is hostage to scheduler bursts (2-3x run-to-run on the CI host)
    while the median holds within a few percent — the tail is
    recorded and surfaced in the step summary, the median gates.
    """
    import threading

    from repro.service import FlowtuneClient, spawn_service
    from repro.topology import TwoTierClos

    config = _MODES[mode]
    n_clients = config["fanout_clients"]
    flows_each = config["fanout_flows_per_client"]
    events_each = config["fanout_events_per_client"]
    agg_rate = config["fanout_rate_per_sec"]
    phases_n = config["fanout_phases"]
    topology = TwoTierClos(n_racks=9, hosts_per_rack=16, n_spines=4)
    rng = np.random.default_rng(seed)
    gamma = 0.4   # the serving gamma; see bench_service_latency

    max_fids = flows_each + phases_n * events_each * 4 + 8
    routes = [_random_route(topology, rng, i) for i in range(max_fids)]

    with spawn_service(racks=9, hosts_per_rack=16, spines=4, mode="auto",
                       gamma=gamma, churn_rate=200.0,
                       churn_burst=400.0) as handle:
        clients = [FlowtuneClient(handle.address, handle.token_hex)
                   for _ in range(n_clients)]
        try:
            live = []   # per-client FIFO of live fids
            for ci, client in enumerate(clients):
                client.apply_churn(starts=[
                    (fid, routes[(ci + fid) % max_fids])
                    for fid in range(flows_each)])
                live.append(list(range(flows_each)))
            pending = [set(range(flows_each)) for _ in range(n_clients)]
            deadline = time.monotonic() + 120.0
            while any(pending) and time.monotonic() < deadline:
                for ci, client in enumerate(clients):
                    for fid, _rate in client.poll(timeout=0.0):
                        pending[ci].discard(fid)
                time.sleep(0.001)
            missing = sum(len(p) for p in pending)
            if missing:
                raise RuntimeError(f"service_fanout: {missing} initial "
                                   "flows never got a rate")

            next_fid = [flows_each] * n_clients
            phases = []
            for _ in range(phases_n):
                n_events = n_clients * events_each
                owners = rng.integers(0, n_clients, size=n_events)
                gaps = rng.exponential(1.0 / agg_rate, size=n_events)
                send_at = {}
                got_at = {}

                def sender(owners=owners, gaps=gaps, send_at=send_at):
                    t_next = time.perf_counter()
                    for k in range(n_events):
                        t_next += gaps[k]
                        delay = t_next - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                        ci = int(owners[k])
                        fid = next_fid[ci]
                        next_fid[ci] += 1
                        oldest = live[ci].pop(0)
                        live[ci].append(fid)
                        send_at[(ci, fid)] = time.perf_counter()
                        clients[ci].apply_churn(
                            starts=[(fid, routes[fid % max_fids])],
                            ends=[oldest])

                thread = threading.Thread(target=sender, daemon=True)
                thread.start()
                deadline = (time.monotonic() + n_events / agg_rate + 60.0)
                while (len(got_at) < n_events
                       and time.monotonic() < deadline):
                    quiet = True
                    for ci, client in enumerate(clients):
                        for fid, _rate in client.poll(timeout=0.0):
                            quiet = False
                            key = (ci, fid)
                            if key in send_at and key not in got_at:
                                got_at[key] = time.perf_counter()
                    if quiet:
                        time.sleep(0.0005)
                thread.join(timeout=60.0)
                per_client = [[] for _ in range(n_clients)]
                for key, t1 in got_at.items():
                    per_client[key[0]].append(t1 - send_at[key])
                if got_at:
                    phases.append(per_client)
            clients[0].shutdown_service()
        finally:
            for client in clients:
                try:
                    client.close()
                except Exception:
                    pass

    if not phases:
        raise RuntimeError("service_fanout: no rate updates observed")

    def phase_p50(per_client):
        lat = np.concatenate([np.asarray(x) for x in per_client if x])
        return float(np.percentile(lat, 50))

    best = min(phases, key=phase_p50)
    all_lat = np.concatenate([np.asarray(x) for x in best if x])
    client_p99 = np.array([float(np.percentile(np.asarray(x), 99))
                           for x in best if x])
    client_mean = np.array([float(np.mean(np.asarray(x)))
                            for x in best if x])
    # Jain's fairness index over per-client mean latency: 1.0 when
    # the duty cycle serves every client equally.
    jain = (float(client_mean.sum()) ** 2
            / (len(client_mean) * float((client_mean ** 2).sum())))
    p50 = float(np.percentile(all_lat, 50))
    p99 = float(np.percentile(all_lat, 99))
    return {
        "ops_per_sec": 1.0 / p50,
        "p50_ms": 1e3 * p50,
        "p99_ms": 1e3 * p99,
        "client_p99_ms_median": 1e3 * float(np.median(client_p99)),
        "client_p99_ms_max": 1e3 * float(client_p99.max()),
        "jain_fairness": jain,
        "clients_observed": int(len(client_mean)),
        "received": int(sum(len(x) for x in best)),
        "params": {"n_clients": n_clients,
                   "flows_per_client": flows_each,
                   "events_per_client": events_each,
                   "aggregate_rate_per_sec": agg_rate,
                   "phases": phases_n, "seed": seed,
                   "churn_rate": 200.0, "churn_burst": 400.0},
    }


BENCHMARKS = {
    "calibration": lambda mode: bench_calibration(mode),
    "iterate_churn_1k": lambda mode: bench_iterate_churn(1_000, mode),
    "iterate_churn_10k": lambda mode: bench_iterate_churn(10_000, mode),
    "iterate_churn_100k": lambda mode: bench_iterate_churn(100_000, mode),
    "iterate_churn_1m": lambda mode: bench_iterate_churn(1_000_000, mode),
    "iterate_churn_sampled": lambda mode: bench_iterate_churn_sampled(mode),
    "multicore_16proc": lambda mode: bench_multicore(mode),
    "fluid_ticks": lambda mode: bench_fluid_ticks(mode),
    "barrier_step": lambda mode: bench_barrier_step(mode),
    "socket_frame_batch": lambda mode: bench_socket_frame_batch(mode),
    "service_latency": lambda mode: bench_service_latency(mode),
    "service_fanout": lambda mode: bench_service_fanout(mode),
    "parallel_speedup": lambda mode: bench_parallel_speedup(mode),
    "parallel_speedup_socket": lambda mode: bench_parallel_speedup(
        mode, fabric="socket", workers_key="socket_workers"),
}


# ----------------------------------------------------------------------
# baseline gate
# ----------------------------------------------------------------------
def relative_scores(results):
    """Each benchmark's ops/sec divided by the run's calibration
    ops/sec — the hardware-normalized figure the gate compares.
    ``UNGATED`` benchmarks (core-count-dependent) are left out."""
    cal = results["calibration"]["ops_per_sec"]
    return {name: entry["ops_per_sec"] / cal
            for name, entry in results.items()
            if name != "calibration" and name not in UNGATED}


def compare(results, baseline_results, tolerance, require_all=True):
    """Returns (rows, regressions) comparing normalized scores.

    ``baseline_results`` must come from the *same mode* as this run —
    quick and full scores skew systematically (different warmup and op
    counts), enough to eat most of the tolerance.  With ``require_all``
    (any run without ``--only``), a benchmark present in the baseline
    but absent from this run counts as a regression — otherwise a
    partial run would silently narrow the gate.
    """
    current = relative_scores(results)
    base = relative_scores(baseline_results)
    rows, regressions = [], []
    for name, score in sorted(current.items()):
        if name not in base:
            rows.append((name, score, None, None, "new"))
            continue
        ratio = score / base[name]
        status = "ok"
        if ratio < 1.0 - tolerance:
            status = "REGRESSION"
            regressions.append(name)
        rows.append((name, score, base[name], ratio, status))
    for name in sorted(set(base) - set(current)):
        if require_all:
            rows.append((name, None, base[name], None, "MISSING"))
            regressions.append(name)
        else:
            rows.append((name, None, base[name], None, "skipped (--only)"))
    return rows, regressions


def step_summary_markdown(results, baseline_results, tolerance, mode):
    """Markdown score table for ``$GITHUB_STEP_SUMMARY``.

    One row per benchmark: raw ops/sec, the normalized score the gate
    compares, the baseline floor (baseline score minus tolerance) and
    the delta vs the baseline score — so a drifting-but-passing run
    is visible in the CI run page without downloading the artifact.
    ``UNGATED`` benchmarks report their headline number plus, for the
    parallel-speedup entries, the measured per-worker speedups the
    §6.1 table needs.
    """
    cal = results.get("calibration", {}).get("ops_per_sec")
    base = relative_scores(baseline_results) if baseline_results else {}
    rows = []
    for name, entry in sorted(results.items()):
        if name == "calibration":
            continue
        ops = entry["ops_per_sec"]
        ops_s = f"{ops:,.1f}"
        detail = None
        if "slowdown_vs_full_10k" in entry:
            # The sieve-sampling lane: how big is the priced set, and
            # how close does 100k-sampled run to full Flowtune at 10k?
            p = entry["params"]
            detail = (f"priced {p['n_priced']:,}/{p['n_flows']:,} "
                      f"({100 * p['priced_fraction']:.0f}%), "
                      f"{entry['slowdown_vs_full_10k']:.2f}x slower than "
                      f"full@{p['full_reference_flows'] // 1000}k")
        if "client_p99_ms_median" in entry:
            # The fan-out lane's per-client tail: is any single client
            # being starved by the duty cycle?
            detail = (f"per-client p99 "
                      f"{entry['client_p99_ms_median']:.1f}ms med / "
                      f"{entry['client_p99_ms_max']:.1f}ms max, "
                      f"Jain {entry['jain_fairness']:.3f}")
        if name in UNGATED or cal is None:
            speedups = entry.get("speedup_vs_single_core")
            if speedups:
                detail = "speedup vs 1-core: " + " ".join(
                    f"{w}w={s:.2f}x" for w, s in sorted(
                        speedups.items(), key=lambda kv: int(kv[0])))
            rows.append([name, ops_s, None, None, None, "ungated",
                         detail])
            continue
        score = ops / cal
        if name in base:
            floor = base[name] * (1.0 - tolerance)
            delta = 100.0 * (score / base[name] - 1.0)
            status = "ok" if score >= floor else "**REGRESSION**"
            rows.append([name, ops_s, f"{score:.4f}", f"{floor:.4f}",
                         f"{delta:+.1f}%", status, detail])
        else:
            rows.append([name, ops_s, f"{score:.4f}", None, None, "new",
                         detail])
    table = report.format_table(
        ["benchmark", "ops/sec", "score", "floor", "Δ vs base", "status",
         "detail"],
        rows, markdown=True)
    return (f"### Hot-path benchmarks ({mode} mode)\n\n{table}\n\n"
            "scores are ops/sec normalized by the calibration kernel; "
            f"floor = baseline score − {tolerance:.0%}\n")


def print_comparison(rows, tolerance):
    print(f"\n{'benchmark':<24} {'now':>10} {'baseline':>10} "
          f"{'ratio':>7}  status (gate: ratio >= {1 - tolerance:.2f})")
    for name, score, base, ratio, status in rows:
        score_s = f"{score:10.4f}" if score is not None else f"{'-':>10}"
        base_s = f"{base:10.4f}" if base is not None else f"{'-':>10}"
        ratio_s = f"{ratio:7.2f}" if ratio is not None else f"{'-':>7}"
        print(f"{name:<24} {score_s} {base_s} {ratio_s}  {status}")
    print("(scores are ops/sec normalized by the calibration kernel)")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Flowtune hot-path benchmark harness")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: fewer ops per benchmark (CI)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any benchmark regresses past "
                             "the tolerance vs the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed normalized-score drop (default 0.30)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"result JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON to compare against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write this run's results as the baseline")
    parser.add_argument("--only", action="extend", nargs="+",
                        metavar="NAME", default=None,
                        help="run just the named benchmark(s); "
                             "calibration always runs")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-kernel breakdown of one "
                             "iterate-under-churn op and exit (no "
                             "benchmarks, no JSON)")
    parser.add_argument("--profile-flows", type=int, default=100_000,
                        metavar="N",
                        help="flow count for --profile (default 100000)")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    if args.profile:
        return profile_churn_iterate(args.profile_flows, mode)
    names = list(BENCHMARKS)
    if args.only and args.update_baseline:
        parser.error("--update-baseline requires the full benchmark set "
                     "(drop --only); a partial baseline would narrow the "
                     "regression gate")
    if args.only:
        unknown = set(args.only) - set(BENCHMARKS)
        if unknown:
            parser.error(f"unknown benchmark(s): {sorted(unknown)}; "
                         f"choose from {names}")
        names = ["calibration"] + [n for n in names
                                   if n in args.only and n != "calibration"]
    elif mode == "quick":
        names = [n for n in names if n not in FULL_ONLY]

    results = {}
    wall_start = time.perf_counter()
    for name in names:
        t0 = time.perf_counter()
        results[name] = BENCHMARKS[name](mode)
        ops = results[name]["ops_per_sec"]
        print(f"{name:<24} {ops:12.1f} ops/sec  "
              f"({time.perf_counter() - t0:5.1f}s)")
    wall = time.perf_counter() - wall_start

    payload = {
        "schema": 2,
        "mode": mode,
        "wall_seconds": round(wall, 2),
        "environment": bench_environment(),
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output} ({wall:.1f}s total)")

    summary_baseline = None
    if args.baseline.exists():
        summary_baseline = json.loads(args.baseline.read_text()) \
            .get("modes", {}).get(mode, {}).get("results")
    # On CI, surface the score table in the run page (no-op locally).
    report.write_step_summary(step_summary_markdown(
        results, summary_baseline, args.tolerance, mode))

    # The baseline file keeps one entry per mode: quick and full
    # scores are not comparable (different warmup and op counts), so
    # each lane gates against a baseline recorded in its own mode.
    if args.update_baseline:
        modes = {}
        if args.baseline.exists():
            modes = json.loads(args.baseline.read_text()).get("modes", {})
        modes[mode] = {"wall_seconds": payload["wall_seconds"],
                       "environment": payload["environment"],
                       "results": results}
        args.baseline.write_text(json.dumps(
            {"schema": 2, "modes": modes}, indent=2) + "\n")
        print(f"baseline updated ({mode} mode): {args.baseline}")
        return 0

    base_results = summary_baseline
    if base_results is not None:
        rows, regressions = compare(results, base_results, args.tolerance,
                                    require_all=not args.only)
        print_comparison(rows, args.tolerance)
        if regressions:
            print(f"\nFAIL: past tolerance ({args.tolerance:.0%}) vs "
                  f"{mode} baseline: {', '.join(regressions)}")
            if args.check:
                return 1
        else:
            print(f"\nall benchmarks within tolerance of {mode} baseline")
    elif args.check:
        print(f"FAIL: --check given but no {mode}-mode baseline at "
              f"{args.baseline}")
        return 1
    else:
        print(f"(no {mode}-mode baseline at {args.baseline}; run with "
              "--update-baseline to record one)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
