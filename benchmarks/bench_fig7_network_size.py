"""Fig. 7 / §6.4 (E): update traffic stays a constant capacity fraction
as the network grows (no debilitating cascades).

Paper sweeps 128 to 2048 servers; the fraction of capacity consumed by
rate updates stays flat per load — the notification threshold stops
updates from cascading network-wide.
"""

import numpy as np

from repro.analysis import format_table
from repro.fluid import measure_update_traffic

from _common import SCALE, report

# Server counts per scale (paper: 128..2048).
SERVER_SWEEP = {
    "smoke": (32, 64),
    "small": (128, 256, 512),
    "paper": (128, 256, 512, 1024, 2048),
}


def test_constant_fraction_vs_size(benchmark):
    counts = SERVER_SWEEP[SCALE.name]
    loads = SCALE.loads[-2:]

    def run():
        series = {load: [] for load in loads}
        for n_servers in counts:
            n_racks = max(2, n_servers // 16)
            for load in loads:
                point = measure_update_traffic(
                    workload="web", load=load, threshold=0.01,
                    duration=max(SCALE.fluid_duration / 2, 1e-3),
                    warmup=SCALE.fluid_warmup / 2, seed=9,
                    n_racks=n_racks, hosts_per_rack=16, n_spines=4)
                series[load].append(point["from_allocator"])
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[n] + [f"{series[load][i]:.4%}" for load in loads]
            for i, n in enumerate(counts)]
    report(format_table(
        ["servers"] + [f"load {load}" for load in loads], rows,
        title="\n[fig 7] from-allocator traffic fraction vs network size"))
    for load in loads:
        values = np.asarray(series[load])
        # Shape: flat in network size — no cascading blow-up.  Allow
        # 2.5x wiggle across the sweep (finite-duration noise).
        assert values.max() < 2.5 * max(values.min(), 1e-6)
